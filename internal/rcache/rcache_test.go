package rcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/wire"
)

func testRef(n uint64) wire.Ref {
	return wire.Ref{Endpoint: "server-0", ObjID: n, Iface: "test.Obj"}
}

func mustKey(t *testing.T, ref wire.Ref, method string, args ...any) string {
	t.Helper()
	k, ok := Key(ref, method, args)
	if !ok {
		t.Fatalf("Key(%v, %s, %v) not cacheable", ref, method, args)
	}
	return k
}

func TestKeyDistinguishesArgsAndRejectsUnencodable(t *testing.T) {
	ref := testRef(1)
	k1 := mustKey(t, ref, "Get", int64(1))
	k2 := mustKey(t, ref, "Get", int64(2))
	k3 := mustKey(t, ref, "Get", int64(1))
	if k1 == k2 {
		t.Fatalf("distinct args produced equal keys")
	}
	if k1 != k3 {
		t.Fatalf("equal args produced distinct keys")
	}
	if km := mustKey(t, testRef(2), "Get", int64(1)); km == k1 {
		t.Fatalf("distinct objects produced equal keys")
	}
	type notRegistered struct{ X chan int }
	if _, ok := Key(ref, "Get", []any{notRegistered{}}); ok {
		t.Fatalf("unencodable argument reported cacheable")
	}
}

func TestGetPutLeaseLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	var epoch uint64 = 7
	c := New(nil,
		WithClock(func() time.Time { return now }),
		WithEpoch(func() uint64 { return epoch }),
		WithTTL(10*time.Second))
	ref := testRef(1)
	key := mustKey(t, ref, "Get")
	obj := ObjKey(ref)

	if _, ok := c.Get(key); ok {
		t.Fatalf("empty cache reported a hit")
	}
	c.Put(key, obj, int64(42), c.Gen(obj), c.Epoch())
	if v, ok := c.Get(key); !ok || v.(int64) != 42 {
		t.Fatalf("Get after Put = (%v, %v), want (42, true)", v, ok)
	}

	// TTL expiry.
	now = now.Add(11 * time.Second)
	if _, ok := c.Get(key); ok {
		t.Fatalf("expired lease served")
	}

	// Epoch bump drops the lease even inside the TTL.
	c.Put(key, obj, int64(43), c.Gen(obj), c.Epoch())
	epoch++
	if _, ok := c.Get(key); ok {
		t.Fatalf("lease served across an epoch bump")
	}
}

func TestInvalidateObjectAndGenerationGuard(t *testing.T) {
	c := New(nil)
	refA, refB := testRef(1), testRef(2)
	keyA, keyB := mustKey(t, refA, "Get"), mustKey(t, refB, "Get")
	objA, objB := ObjKey(refA), ObjKey(refB)

	c.Put(keyA, objA, "a", c.Gen(objA), 0)
	c.Put(keyB, objB, "b", c.Gen(objB), 0)
	c.InvalidateObject(objA)
	if _, ok := c.Get(keyA); ok {
		t.Fatalf("invalidated object's entry served")
	}
	if _, ok := c.Get(keyB); !ok {
		t.Fatalf("invalidation dropped an unrelated object's entry")
	}

	// The stale-fill race: a read records a miss (capturing gen), a write
	// invalidates, then the read's result lands. The fill must be dropped.
	gen := c.Gen(objA)
	c.InvalidateObject(objA)
	c.Put(keyA, objA, "stale", gen, 0)
	if _, ok := c.Get(keyA); ok {
		t.Fatalf("stale fill survived a concurrent invalidation")
	}
}

func TestEvictionFIFOAndCounter(t *testing.T) {
	reg := stats.New()
	c := New(reg, WithMaxEntries(2))
	ref := testRef(1)
	obj := ObjKey(ref)
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = mustKey(t, ref, "Get", int64(i))
		c.Put(keys[i], obj, i, c.Gen(obj), 0)
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatalf("oldest entry survived past the cap")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatalf("newest entry evicted")
	}
	if got := reg.Snapshot().Counter("cache.evictions"); got != 1 {
		t.Fatalf("cache.evictions = %d, want 1", got)
	}
}

func TestFlightLeaderFollower(t *testing.T) {
	reg := stats.New()
	c := New(reg)
	f, leader := c.Begin("k")
	if !leader {
		t.Fatalf("first Begin not leader")
	}
	f2, leader2 := c.Begin("k")
	if leader2 || f2 != f {
		t.Fatalf("second Begin = (%p, %v), want follower on the same flight", f2, leader2)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := f2.Wait(context.Background())
		if err != nil || v.(int) != 9 {
			t.Errorf("follower Wait = (%v, %v), want (9, nil)", v, err)
		}
	}()
	c.Finish("k", f, 9, nil)
	<-done
	if got := reg.Snapshot().Counter("cache.coalesced"); got != 1 {
		t.Fatalf("cache.coalesced = %d, want 1", got)
	}
	// The flight is retired: the next Begin leads a fresh one.
	if _, leader := c.Begin("k"); !leader {
		t.Fatalf("Begin after Finish not leader")
	}
}

func TestFlightWaitRespectsContext(t *testing.T) {
	c := New(nil)
	f, _ := c.Begin("k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait on canceled ctx = %v, want context.Canceled", err)
	}
	c.Finish("k", f, nil, nil) // leaders always finish
}

func TestGroupCoalesces(t *testing.T) {
	var g Group
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	results := make([]any, n)
	shareds := make([]bool, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, shared := g.Do("k", func() (any, error) {
			close(started)
			<-gate
			return calls.Add(1), nil
		})
		results[0], shareds[0] = v, shared
	}()
	<-started // the leader is inside fn; everyone else must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, shared := g.Do("k", func() (any, error) { return calls.Add(1), nil })
			results[i], shareds[i] = v, shared
		}(i)
	}
	// Wait until every follower is parked on the flight, then release. The
	// loop polls the group's internal state via a fresh key as a fence; a
	// bounded sleep keeps the test honest without flaking.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v.(int64) != 1 {
			t.Fatalf("caller %d got %v, want 1", i, v)
		}
	}
	if shareds[0] {
		t.Fatalf("leader reported shared")
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	c := New(stats.New())
	ref := testRef(1)
	obj := ObjKey(ref)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := mustKey(t, ref, "Get", int64(i%16))
				switch i % 4 {
				case 0:
					c.Put(key, obj, fmt.Sprintf("%d-%d", g, i), c.Gen(obj), 0)
				case 1:
					c.Get(key)
				case 2:
					c.InvalidateObject(obj)
				default:
					f, leader := c.Begin(key)
					if leader {
						c.Finish(key, f, i, nil)
					} else {
						ctx, cancel := context.WithTimeout(context.Background(), time.Second)
						_, _ = f.Wait(ctx)
						cancel()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
