// Package analysis is a self-contained static-analysis framework for the
// batching programming model, shaped after golang.org/x/tools/go/analysis
// but built only on the standard library (this module vendors nothing).
//
// The paper's explicit programming model comes with usage rules — record,
// then flush; don't read a future early; a //brmi:readonly method must
// actually be readonly; a pooled buffer is returned exactly once — that the
// runtime can only report after the fact (a pending-future error, a stale
// cache entry) or not at all (a leaked buffer). The analyzers in
// internal/analysis/checks move that misuse surface to build time; this
// package supplies what they run on:
//
//   - Analyzer / Pass / Diagnostic — the x/tools-shaped analyzer contract
//   - a loader (load.go) that type-checks packages offline from compiler
//     export data ("go list -export"), no network and no external modules
//   - package facts, so an analyzer's findings about a dependency (e.g.
//     which interface methods are annotated //brmi:readonly, which types
//     are wire.Register'ed) flow to the packages that import it
//   - //brmivet:ignore suppression handling shared by the driver and the
//     analysistest fixture runner
//
// cmd/brmivet is the multichecker binary over the canonical suite.
package analysis
