package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Unflushed flags a recorded batch with a path to a return on which
// neither Flush nor FlushAndContinue is ever called — recorded calls
// silently evaporate (and their futures stay pending forever). Modeled on
// vet's lostcancel: the analysis is function-local and path-sensitive over
// the AST's structured control flow (the shared flowClient walker). A
// batch that escapes — returned, passed to another function, stored into a
// composite, captured by a function literal — is assumed flushed by its
// new owner.
var Unflushed = &analysis.Analyzer{
	Name: "unflushed",
	Doc: "report batches (core.New, cluster.New, NewBatch<Iface>) that can reach a " +
		"return without Flush; their recorded calls never execute",
	Run: runUnflushed,
}

// ufBatch is one tracked batch creation.
type ufBatch struct {
	name string
	pos  ast.Node
}

// ufState is the per-path flush state of the tracked batches.
type ufState map[*ufBatch]bool // true = flushed (or escaped) on this path

type ufScope struct {
	pass *analysis.Pass
	info *types.Info

	vars     map[types.Object]*ufBatch
	violated map[*ufBatch]bool
	// gaveUp is set on control flow the walker does not model (goto);
	// everything is assumed flushed from there on.
	gaveUp bool
}

func runUnflushed(pass *analysis.Pass) error {
	for _, body := range funcBodies(pass.Files) {
		s := &ufScope{
			pass:     pass,
			info:     pass.TypesInfo,
			vars:     make(map[types.Object]*ufBatch),
			violated: make(map[*ufBatch]bool),
		}
		walkFlow[ufState](s, body, make(ufState))
	}
	return nil
}

func (s *ufScope) Clone(st ufState) ufState {
	c := make(ufState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

func (s *ufScope) GoTo() { s.gaveUp = true }

// DeferEvents: a deferred Flush discharges like an inline one (it runs on
// every later return path), so defers get the ordinary event handling.
func (s *ufScope) DeferEvents(call ast.Node, st ufState) { s.Events(call, st) }

// Join merges branch states into st: a batch is flushed after the
// construct only if every falling-through branch flushed it. A branch
// whose state lacks the key predates the creation (the batch was created
// in a sibling branch) and contributes nothing — only the branches that
// actually saw the batch vote.
func (s *ufScope) Join(st ufState, branches []ufState, terms []bool) {
	keys := make(map[*ufBatch]bool)
	for _, b := range branches {
		for k := range b {
			keys[k] = true
		}
	}
	for k := range keys {
		flushed := true
		live := false
		for i, b := range branches {
			if terms[i] {
				continue // terminated branches don't fall through
			}
			v, ok := b[k]
			if !ok {
				continue // branch predates this creation
			}
			live = true
			flushed = flushed && v
		}
		if live {
			st[k] = flushed
		} else {
			st[k] = true // no falling-through branch saw it live
		}
	}
}

// MergeLoop folds a loop body's end state into st, assuming the body ran:
// flushes inside the loop count.
func (s *ufScope) MergeLoop(st ufState, bodySt ufState) {
	for k, v := range bodySt {
		if v {
			st[k] = true
		} else if _, ok := st[k]; !ok {
			st[k] = false
		}
	}
}

// AtReturn marks returned batches as escaped to the caller, then reports
// every batch still live and unflushed on this path. A return that hands
// back a non-nil error is a failure path: abandoning a batch there is the
// documented pattern (recorded calls are plain garbage, nothing to
// release), so those paths are not reported.
func (s *ufScope) AtReturn(st ufState, ret *ast.ReturnStmt) {
	if ret != nil {
		for _, r := range ret.Results {
			if obj := rootObj(s.info, r); obj != nil {
				if b, ok := s.vars[obj]; ok {
					st[b] = true
				}
			}
		}
		if returnsError(s.info, ret) {
			return
		}
	}
	if s.gaveUp {
		return
	}
	for b, flushed := range st {
		if flushed || s.violated[b] {
			continue
		}
		s.violated[b] = true
		s.pass.Reportf(b.pos.Pos(), "batch %s can reach a return without Flush or FlushAndContinue; its recorded calls never execute", b.name)
	}
}

// Events extracts creation/flush/escape events from an expression or
// simple statement, in source order. Nested function literals are opaque:
// captures escape.
func (s *ufScope) Events(n ast.Node, st ufState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			s.capture(x, st)
			return false
		case *ast.AssignStmt:
			s.assign(x, st)
			return true
		case *ast.ValueSpec:
			s.valueSpec(x, st)
			return true
		case *ast.CallExpr:
			s.callEvents(x, st)
			return true
		}
		return true
	})
}

// capture marks everything a function literal closes over as escaped.
func (s *ufScope) capture(lit *ast.FuncLit, st ufState) {
	for obj := range identsUsed(s.info, lit) {
		if b, ok := s.vars[obj]; ok {
			st[b] = true
		}
	}
}

// assign tracks batch creations and copies.
func (s *ufScope) assign(a *ast.AssignStmt, st ufState) {
	// A batch assigned into a field/index escapes.
	for _, lhs := range a.Lhs {
		if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent {
			for _, rhs := range a.Rhs {
				if obj := rootObj(s.info, rhs); obj != nil {
					if b, ok := s.vars[obj]; ok {
						st[b] = true
					}
				}
			}
			break
		}
	}

	var shared *ufBatch
	var sharedExisting bool
	for _, rhs := range a.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			shared, sharedExisting = s.creationOwner(call)
			break
		}
	}
	for i, lhs := range a.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := s.info.ObjectOf(id)
		if obj == nil || !isBatchLike(obj.Type()) {
			continue
		}
		if shared != nil {
			s.vars[obj] = shared
			if !sharedExisting {
				if _, tracked := st[shared]; !tracked {
					st[shared] = false
				}
			}
			continue
		}
		// Plain copy: share the source's tracking.
		if len(a.Rhs) == len(a.Lhs) {
			if src := rootObj(s.info, a.Rhs[i]); src != nil {
				if b, ok := s.vars[src]; ok {
					s.vars[obj] = b
				}
			}
		}
	}
}

func (s *ufScope) valueSpec(v *ast.ValueSpec, st ufState) {
	// var b = core.New(...) — same shape as := with one call RHS.
	var shared *ufBatch
	var sharedExisting bool
	for _, rhs := range v.Values {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			shared, sharedExisting = s.creationOwner(call)
			break
		}
	}
	if shared == nil {
		return
	}
	for _, id := range v.Names {
		obj := s.info.ObjectOf(id)
		if obj == nil || !isBatchLike(obj.Type()) {
			continue
		}
		s.vars[obj] = shared
		if !sharedExisting {
			if _, tracked := st[shared]; !tracked {
				st[shared] = false
			}
		}
	}
}

// creationOwner decides what batch state a batch-returning call yields:
// an existing tracked batch when the call's receiver or an argument is one
// (b.Root(), NewBatchDirectory on a tracked batch's peer); a fresh
// creation only when the call mints an actual batch — a result typed
// core/cluster Batch or a generated wrapper — from non-batch inputs
// (core.New, cluster.New, NewBatch<Iface>). A call that merely derives a
// proxy/cursor from an untracked batch-like value (a parameter, a field)
// carries the caller's obligation, not a new one.
func (s *ufScope) creationOwner(call *ast.CallExpr) (b *ufBatch, existing bool) {
	if !returnsBatchLike(s.info, call) {
		return nil, false
	}
	derived := false
	if obj := chainRootObj(s.info, call); obj != nil {
		if existing, ok := s.vars[obj]; ok {
			return existing, true
		}
		if isBatchLike(obj.Type()) {
			derived = true
		}
	}
	for _, arg := range call.Args {
		if obj := rootObj(s.info, arg); obj != nil {
			if existing, ok := s.vars[obj]; ok {
				return existing, true
			}
			if isBatchLike(obj.Type()) {
				derived = true
			}
		}
	}
	if derived || !returnsBatchMint(s.info, call) {
		return nil, false
	}
	fresh := &ufBatch{name: creationName(call), pos: call}
	return fresh, false
}

// returnsBatchMint reports whether a result of call is an actual batch
// (not a derived proxy/cursor): core/cluster Batch or a generated
// wrapper.
func returnsBatchMint(info *types.Info, call *ast.CallExpr) bool {
	t, ok := info.Types[call]
	if !ok {
		return false
	}
	if isBatchType(t.Type) {
		return true
	}
	if tup, isTup := t.Type.(*types.Tuple); isTup {
		for i := 0; i < tup.Len(); i++ {
			if isBatchType(tup.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

// callEvents handles flush and escape-by-argument.
func (s *ufScope) callEvents(call *ast.CallExpr, st ufState) {
	if recv, method, ok := methodCall(s.info, call); ok {
		if (method.Name() == "Flush" || method.Name() == "FlushAndContinue") && isBatchLike(s.info.Types[recv].Type) {
			if obj := chainRootObj(s.info, recv); obj != nil {
				if b, tracked := s.vars[obj]; tracked {
					st[b] = true
				}
			}
			return
		}
		// Other method calls on a batch (Call, Root, PendingCalls...) are
		// recording, not discharging; only non-receiver argument passing
		// escapes below.
	}
	// A batch-returning call that CHAINS from a tracked batch shares state
	// (handled at assignment); a tracked batch passed as a plain argument
	// to a function that does not return a batch escapes to the callee.
	returnsBatch := returnsBatchLike(s.info, call)
	for _, arg := range call.Args {
		if obj := rootObj(s.info, arg); obj != nil {
			if b, ok := s.vars[obj]; ok && !returnsBatch {
				st[b] = true
			}
		}
	}
}

// returnsError reports whether the return statement hands back an error
// value that is not the literal nil — i.e. this is (at least potentially)
// a failure-path return. `return err`, `return fmt.Errorf(...)`, and
// `return x, err` qualify; `return nil` and `return x, nil` do not.
func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		r = ast.Unparen(r)
		if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
			if _, isNil := info.ObjectOf(id).(*types.Nil); isNil {
				continue
			}
		}
		tv, ok := info.Types[r]
		if !ok || tv.Type == nil {
			continue
		}
		if types.Implements(tv.Type, errorIface) {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// returnsBatchLike reports whether any result of call is batch-like.
func returnsBatchLike(info *types.Info, call *ast.CallExpr) bool {
	t, ok := info.Types[call]
	if !ok {
		return false
	}
	if isBatchLike(t.Type) {
		return true
	}
	if tup, isTup := t.Type.(*types.Tuple); isTup {
		for i := 0; i < tup.Len(); i++ {
			if isBatchLike(tup.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

func creationName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return "from " + f.Name
	case *ast.SelectorExpr:
		return "from " + exprString(f)
	}
	return "created here"
}
