package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// FutureDeref flags reads of a future (Future.Get, Future.Err,
// TypedFuture.Get) that happen before the owning batch's Flush — the
// paper's core misuse, which today surfaces only as a runtime
// core.ErrPending. The analysis is function-local and follows source
// order: a future created in this function must not be read until its
// batch (or, when the owner can't be resolved, some batch) has flushed.
// Futures received as parameters, loaded from fields, or captured from an
// enclosing function are assumed settled by the caller and are not
// tracked; function literals are opaque (each is analyzed as its own
// scope) and defers run after the body, so neither contributes events.
var FutureDeref = &analysis.Analyzer{
	Name: "futurederef",
	Doc: "report future reads (Get/Err) reachable before the owning batch's Flush; " +
		"pre-flush reads return core.ErrPending at runtime",
	Run: runFutureDeref,
}

// fdOwner is the flush state of one batch as seen along the linear scan.
type fdOwner struct {
	flushed bool
}

type fdScope struct {
	info *types.Info
	pass *analysis.Pass

	owners  map[types.Object]*fdOwner
	futures map[types.Object]*fdOwner // future var -> owning batch (nil = unknown)
	// anyFlush records that some flush (or an escape that may flush)
	// happened; it settles futures whose owner could not be resolved.
	anyFlush bool
}

func runFutureDeref(pass *analysis.Pass) error {
	for _, body := range funcBodies(pass.Files) {
		s := &fdScope{
			info:    pass.TypesInfo,
			pass:    pass,
			owners:  make(map[types.Object]*fdOwner),
			futures: make(map[types.Object]*fdOwner),
		}
		s.scan(body, body)
	}
	return nil
}

// scan walks n in source order, dispatching events. root distinguishes the
// body being scanned from nested function literals, which are skipped.
func (s *fdScope) scan(root *ast.BlockStmt, n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			if x.Body != root {
				s.opaque(x)
				return false
			}
		case *ast.DeferStmt:
			// Defers run at return, after any in-body flush; their flush
			// calls must not settle earlier reads, and their reads are
			// not pre-flush reads. Captures still escape.
			s.opaque(x)
			return false
		case *ast.AssignStmt:
			s.assign(x)
		case *ast.CallExpr:
			s.call(x)
		case *ast.ReturnStmt:
			// Returning a batch hands flushing to the caller.
			for _, r := range x.Results {
				if obj := rootObj(s.info, r); obj != nil {
					if o, ok := s.owners[obj]; ok {
						o.flushed = true
					}
				}
			}
		}
		return true
	})
}

// opaque processes a skipped subtree: anything it captures may be flushed
// or consumed by it, so tracked state mentioned inside stops being tracked.
func (s *fdScope) opaque(n ast.Node) {
	for obj := range identsUsed(s.info, n) {
		if o, ok := s.owners[obj]; ok {
			o.flushed = true
		}
		delete(s.futures, obj)
	}
}

// assign tracks future and batch bindings.
func (s *fdScope) assign(a *ast.AssignStmt) {
	// Tuple call assignment: one shared owner state for every batch-like
	// result (the NewBatch<Iface> wrapper returns both the wrapper and the
	// underlying *core.Batch).
	var sharedOwner *fdOwner
	for _, rhs := range a.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			sharedOwner = s.callOwner(call)
			break
		}
	}
	for i, lhs := range a.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := s.info.ObjectOf(id)
		if obj == nil {
			continue
		}
		t := obj.Type()
		switch {
		case isBatchLike(t):
			if sharedOwner != nil {
				s.owners[obj] = sharedOwner
			} else if len(a.Rhs) == len(a.Lhs) {
				// Copy of an existing batch var shares its state.
				if src := rootObj(s.info, a.Rhs[i]); src != nil {
					if o, ok := s.owners[src]; ok {
						s.owners[obj] = o
						continue
					}
				}
				s.owners[obj] = &fdOwner{}
			} else {
				s.owners[obj] = &fdOwner{}
			}
		case isFutureType(t):
			s.futures[obj] = s.rhsFutureOwner(a, i)
		}
	}
}

// rhsFutureOwner resolves the owning batch of the future assigned to
// a.Lhs[i], or nil when unknown.
func (s *fdScope) rhsFutureOwner(a *ast.AssignStmt, i int) *fdOwner {
	var rhs ast.Expr
	if len(a.Rhs) == len(a.Lhs) {
		rhs = a.Rhs[i]
	} else if len(a.Rhs) == 1 {
		rhs = a.Rhs[0]
	} else {
		return nil
	}
	rhs = ast.Unparen(rhs)
	// Copy of a tracked future.
	if obj := rootObj(s.info, rhs); obj != nil {
		if o, ok := s.futures[obj]; ok {
			return o
		}
	}
	if call, ok := rhs.(*ast.CallExpr); ok {
		// core.Typed[T](fut) wraps an existing future; the wrapped
		// expression may itself be a recording call.
		if isPkgFunc(s.info, call, corePath, "Typed") && len(call.Args) == 1 {
			if obj := rootObj(s.info, call.Args[0]); obj != nil {
				return s.futures[obj]
			}
			if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				return s.callOwner(inner)
			}
		}
		return s.callOwner(call)
	}
	return nil
}

// callOwner resolves the batch a recording call belongs to: the tracked
// batch-like value at the root of the receiver chain (fut :=
// b.Call("m"), fut := wrapper.GetSize(), p := b.Root(ref)). Returns the
// existing state when the chain roots in a tracked batch; a fresh state
// when the call mints a new batch; nil when no batch is involved.
func (s *fdScope) callOwner(call *ast.CallExpr) *fdOwner {
	if obj := chainRootObj(s.info, call); obj != nil {
		if o, ok := s.owners[obj]; ok {
			return o
		}
		if isBatchLike(obj.Type()) {
			o := &fdOwner{}
			s.owners[obj] = o
			return o
		}
	}
	// A call with a tracked batch argument shares that batch's state
	// (BatchDirectory(b), cluster helpers taking the batch).
	for _, arg := range call.Args {
		if obj := rootObj(s.info, arg); obj != nil {
			if o, ok := s.owners[obj]; ok {
				return o
			}
		}
	}
	if t, ok := s.info.Types[call]; ok {
		if isBatchLike(t.Type) {
			return &fdOwner{}
		}
		if tup, isTup := t.Type.(*types.Tuple); isTup {
			for i := 0; i < tup.Len(); i++ {
				if isBatchLike(tup.At(i).Type()) {
					return &fdOwner{}
				}
			}
		}
	}
	return nil
}

// call processes flush events, escapes, and the flagged reads.
func (s *fdScope) call(call *ast.CallExpr) {
	if recv, method, ok := methodCall(s.info, call); ok {
		recvType := s.info.Types[recv].Type
		switch method.Name() {
		case "Flush", "FlushAndContinue":
			if isBatchLike(recvType) {
				if obj := chainRootObj(s.info, recv); obj != nil {
					if o, ok := s.owners[obj]; ok {
						o.flushed = true
						return
					}
				}
				// Flush on something we don't track (field, parameter):
				// settles everything, conservatively.
				s.anyFlush = true
				for _, o := range s.owners {
					o.flushed = true
				}
				return
			}
		case "Get", "Err":
			if isFutureType(recvType) {
				s.read(call, recv)
			}
		}
	}
	// A tracked batch passed as an argument escapes: the callee may flush
	// it. A tracked future passed as an argument is consumed (futures are
	// legal call arguments pre-flush; the splice rules take over).
	for _, arg := range call.Args {
		if obj := rootObj(s.info, arg); obj != nil {
			if o, ok := s.owners[obj]; ok {
				o.flushed = true
			}
			delete(s.futures, obj)
		}
	}
}

// read flags a pre-flush future read.
func (s *fdScope) read(call *ast.CallExpr, recv ast.Expr) {
	recv = ast.Unparen(recv)
	// tf.Future().Get() reads through the typed wrapper.
	if c := callOrSelf(recv); c != nil {
		if inner, method, ok := methodCall(s.info, c); ok && method.Name() == "Future" {
			recv = inner
		}
	}
	if obj := rootObj(s.info, recv); obj != nil {
		owner, tracked := s.futures[obj]
		if !tracked {
			return // parameter, field, captured: assumed settled
		}
		if owner != nil {
			if !owner.flushed {
				s.pass.Reportf(call.Pos(), "future %s is read before the owning batch's Flush (returns core.ErrPending at runtime)", exprString(recv))
			}
			return
		}
		if !s.anyFlush && !s.someFlushed() {
			s.pass.Reportf(call.Pos(), "future %s is read before any Flush in this function", exprString(recv))
		}
		return
	}
	// Chained read: batch.Call("m").Get() with no variable in between.
	if c := chainCall(recv); c != nil {
		if owner := s.callOwner(c); owner != nil && !owner.flushed {
			s.pass.Reportf(call.Pos(), "future is read in the same expression that records it — no Flush can have run")
		}
	}
}

func (s *fdScope) someFlushed() bool {
	for _, o := range s.owners {
		if o.flushed {
			return true
		}
	}
	return false
}

// callOrSelf returns the receiver as a call expression when it is one.
func callOrSelf(e ast.Expr) *ast.CallExpr {
	if c, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return c
	}
	return nil
}

// chainCall digs the innermost call of a chained receiver expression.
func chainCall(e ast.Expr) *ast.CallExpr {
	if c, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return c
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	}
	return "value"
}
