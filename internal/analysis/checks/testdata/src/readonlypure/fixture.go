// Fixture for the readonlypure analyzer: //brmi:readonly implementations
// that mutate receiver state.
package readonlypure

import "sync"

type Sizer interface {
	//brmi:readonly
	Size(path string) (int64, error)
}

type Counter interface {
	//brmi:readonly
	Count() (int64, error)
}

type Tracker interface {
	//brmi:readonly
	Hits() (int64, error)
}

type Drainer interface {
	//brmi:readonly
	Drain() (int64, error)
}

// badStore bumps a counter inside a readonly method.
type badStore struct {
	sizes map[string]int64
	gen   int64
}

func (s *badStore) Size(path string) (int64, error) {
	s.gen++ // want `writes receiver state \(s.gen\)`
	return s.sizes[path], nil
}

// mapWriter stores through receiver state.
type mapWriter struct {
	sizes map[string]int64
}

func (s *mapWriter) Size(path string) (int64, error) {
	s.sizes[path] = 0 // want `writes receiver state \(s.sizes\)`
	return 0, nil
}

// lockedStore locks for a consistent read: allowed.
type lockedStore struct {
	mu    sync.RWMutex
	sizes map[string]int64
}

func (s *lockedStore) Size(path string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sizes[path], nil
}

// helperStore reads through a pure helper: allowed.
type helperStore struct {
	sizes map[string]int64
}

func (s *helperStore) Count() (int64, error) {
	return s.total(), nil
}

func (s *helperStore) total() int64 {
	var n int64
	for _, v := range s.sizes {
		n += v
	}
	return n
}

// impureHelper mutates through a helper the readonly method calls.
type impureHelper struct {
	sizes map[string]int64
	gen   int64
}

func (s *impureHelper) Count() (int64, error) {
	s.bump() // want `calls non-readonly method bump`
	return int64(len(s.sizes)), nil
}

func (s *impureHelper) bump() { s.gen++ }

// drainStore hands receiver state to a mutating builtin.
type drainStore struct {
	sizes map[string]int64
}

func (s *drainStore) Drain() (int64, error) {
	n := int64(len(s.sizes))
	clear(s.sizes) // want `passes receiver-reachable reference s.sizes`
	return n, nil
}

// suppressedTracker documents a deliberate relaxation.
type suppressedTracker struct {
	hits int64
}

func (s *suppressedTracker) Hits() (int64, error) {
	//brmivet:ignore readonlypure approximate hit counter is allowed to race
	s.hits++
	return s.hits, nil
}
