// Cross-package fixture for wireregister: Point is registered by the
// wireregister fixture package's init, and that registration reaches this
// importing package via the exported package fact. Query is registered
// nowhere.
package wireregister_use

import (
	"wireregister"

	"repro/internal/core"
)

func use(b *core.Batch, p wireregister.Point, q wireregister.Query) {
	b.Root().Call("Move", p)
	b.Root().Call("Find", q) // want `wireregister.Query is passed to Call`
}
