// Fixture for the wireregister analyzer: struct types crossing the wire
// need a wire registration.
package wireregister

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/wire"
)

type Point struct{ X, Y int64 }

type Query struct{ Term string }

func init() {
	wire.MustRegister("wireregister.Point", Point{})
}

func registeredArg(b *core.Batch, p Point) {
	b.Root().Call("Move", p)
}

func unregisteredArg(b *core.Batch, q Query) {
	b.Root().Call("Find", q)         // want `wireregister.Query is passed to Call`
	b.Root().CallRO("Find", Query{}) // want `wireregister.Query is passed to CallRO`
}

func unregisteredSlice(b *core.Batch, qs []Query) {
	b.Root().Call("FindAll", qs) // want `wireregister.Query is passed to Call`
}

func nativeTypes(b *core.Batch, t time.Time, r wire.Ref) {
	b.Root().Call("Touch", t, r, "name", int64(4))
}

func peerCall(ctx context.Context, p *rmi.Peer, ref wire.Ref, q Query) {
	_, _ = p.Call(ctx, ref, "find", q) // want `wireregister.Query is passed to Call`
}

//brmi:remote
type Finder interface {
	Find(q Query) (Point, error) // want `wireregister.Query crosses the wire in //brmi:remote method Finder.Find`
	Move(p Point) error
}

func suppressedArg(b *core.Batch) {
	//brmivet:ignore wireregister decode-failure path test ships it raw
	b.Root().Call("Find", Query{})
}
