// Fixture for the poolcheck analyzer: transport.GetBuffer/PutBuffer
// pairing.
package poolcheck

import (
	"repro/internal/transport"
	"repro/internal/wire"
)

func send(b []byte) {}

// The classic leak: MarshalAppend returns (nil, err) on failure, so the
// pooled buffer fed into it is unreachable on the error path.
func leakOnError(v any) ([]byte, error) {
	payload, err := wire.MarshalAppend(transport.GetBuffer(), v) // want `without transport.PutBuffer`
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// The fix for the above: keep the checkout in a variable and put it back
// on the error path.
func balancedOnError(v any) error {
	buf := transport.GetBuffer()
	payload, err := wire.MarshalAppend(buf, v)
	if err != nil {
		transport.PutBuffer(buf)
		return err
	}
	send(payload)
	return nil
}

func neverPut() {
	buf := transport.GetBuffer() // want `without transport.PutBuffer`
	buf = append(buf, 0)
	_ = buf
}

func doublePut() {
	buf := transport.GetBuffer()
	transport.PutBuffer(buf)
	transport.PutBuffer(buf) // want `transport.PutBuffer is called twice`
}

func useAfterPut(v any) {
	buf := transport.GetBuffer()
	transport.PutBuffer(buf)
	_, _ = wire.MarshalAppend(buf, v) // want `used after transport.PutBuffer`
}

func putOnAllPaths(ok bool) {
	buf := transport.GetBuffer()
	if ok {
		transport.PutBuffer(buf)
	} else {
		transport.PutBuffer(buf)
	}
}

func deferredPut(v any) error {
	buf := transport.GetBuffer()
	defer transport.PutBuffer(buf)
	_, err := wire.MarshalAppend(buf, v)
	return err
}

// Handing the buffer to a callee transfers ownership.
func escapesToCallee() {
	buf := transport.GetBuffer()
	send(buf)
}

// Returning the buffer transfers ownership to the caller.
func escapesToCaller() []byte {
	buf := transport.GetBuffer()
	return buf
}

// Returning through append hands the buffer's backing memory to the
// caller the same way returning the variable does.
func escapesViaAppend(p []byte) []byte {
	out := transport.GetBuffer()
	return append(out, p...)
}

// A call handing back a DIFFERENT []byte neither discharges the argument
// nor carries its obligation into the result: the put of the request
// buffer after the exchange is correct, not a use-after-put, and the
// response needs no put of its own.
func obligationSurvivesRoundTrip() {
	buf := transport.GetBuffer()
	resp := exchange(buf)
	transport.PutBuffer(buf)
	send(resp)
}

func exchange(req []byte) []byte { return req }

// A checkout put back inside its own branch is balanced; the sibling
// branch that never saw it does not vote.
func putInBranch(cond bool, v any) {
	if cond {
		buf := transport.GetBuffer()
		_, _ = wire.MarshalAppend(buf, v)
		transport.PutBuffer(buf)
	}
}

// StreamWriter.SendOwned is put-family: it takes ownership of the buffer
// and returns it to the pool itself, discharging the obligation.
func sendOwnedDischarges(w *transport.StreamWriter, v any) error {
	buf := transport.GetBuffer()
	buf, err := wire.MarshalAppend(buf, v)
	if err != nil {
		transport.PutBuffer(buf)
		return err
	}
	return w.SendOwned(buf)
}

// Putting a buffer SendOwned already owns is a double put.
func putAfterSendOwned(w *transport.StreamWriter) {
	buf := transport.GetBuffer()
	_ = w.SendOwned(buf)
	transport.PutBuffer(buf) // want `already handed to StreamWriter.SendOwned`
}

// The buffer may be pooled (and rewritten) the moment SendOwned returns.
func useAfterSendOwned(w *transport.StreamWriter, v any) {
	buf := transport.GetBuffer()
	_ = w.SendOwned(buf)
	_, _ = wire.MarshalAppend(buf, v) // want `used after StreamWriter.SendOwned`
}

func doubleSendOwned(w *transport.StreamWriter) {
	buf := transport.GetBuffer()
	_ = w.SendOwned(buf)
	_ = w.SendOwned(buf) // want `handed to StreamWriter.SendOwned twice`
}

func suppressedLeak() {
	//brmivet:ignore poolcheck deliberate leak exercises pool refill
	buf := transport.GetBuffer()
	_ = buf
}
