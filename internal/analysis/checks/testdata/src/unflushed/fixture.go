// Fixture for the unflushed analyzer: batches that can reach a return
// without Flush.
package unflushed

import (
	"context"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/wire"
)

func neverFlushed(peer *rmi.Peer, root wire.Ref) {
	b := core.New(peer, root) // want `batch from core.New can reach a return without Flush`
	b.Root().Call("Get")
}

func leaksOnEarlyReturn(peer *rmi.Peer, root wire.Ref, cond bool) error {
	b := core.New(peer, root) // want `batch from core.New can reach a return without Flush`
	fut := b.Root().Call("Get")
	if cond {
		return nil
	}
	if err := b.Flush(context.Background()); err != nil {
		return err
	}
	return fut.Err()
}

func flushed(peer *rmi.Peer, root wire.Ref) error {
	b := core.New(peer, root)
	b.Root().Call("Get")
	return b.Flush(context.Background())
}

func flushedViaDefer(peer *rmi.Peer, root wire.Ref) {
	b := core.New(peer, root)
	defer b.Flush(context.Background())
	b.Root().Call("Get")
}

func flushedOnEveryBranch(peer *rmi.Peer, root wire.Ref, cond bool) {
	b := core.New(peer, root)
	b.Root().Call("Get")
	if cond {
		_ = b.Flush(context.Background())
	} else {
		_ = b.FlushAndContinue(context.Background())
	}
}

// Abandoning a batch on a failure path is the documented pattern: the
// recorded calls are plain garbage, there is nothing to release. Only
// success paths must flush.
func abandonedOnError(peer *rmi.Peer, root wire.Ref, extra wire.Ref) error {
	b := core.New(peer, root)
	b.Root().Call("Get")
	if _, err := b.AddRoot(extra); err != nil {
		return err
	}
	return b.Flush(context.Background())
}

// A batch created and flushed entirely inside one branch must not be
// resurrected as unflushed by the sibling branch that never saw it.
func flushedInBranch(peer *rmi.Peer, root wire.Ref, cond bool) {
	if cond {
		b := core.New(peer, root)
		b.Root().Call("Get")
		_ = b.Flush(context.Background())
	}
}

// A returned batch is the caller's to flush.
func escapesToCaller(peer *rmi.Peer, root wire.Ref) *core.Batch {
	b := core.New(peer, root)
	b.Root().Call("warm")
	return b
}

// A batch handed to another function is that function's to flush.
func escapesToCallee(peer *rmi.Peer, root wire.Ref) {
	b := core.New(peer, root)
	finish(b)
}

func finish(b *core.Batch) {
	_ = b.Flush(context.Background())
}

func suppressedLeak(peer *rmi.Peer, root wire.Ref) {
	//brmivet:ignore unflushed dropped batch exercises session GC
	b := core.New(peer, root)
	b.Root().Call("Get")
}
