// Fixture for the futurederef analyzer: reads of batch futures before the
// owning batch's Flush.
package futurederef

import (
	"context"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/wire"
)

func preFlushRead(peer *rmi.Peer, root wire.Ref) {
	b := core.New(peer, root)
	fut := b.Root().Call("Get")
	_, _ = fut.Get() // want `future fut is read before the owning batch's Flush`
	_ = b.Flush(context.Background())
}

func preFlushErr(peer *rmi.Peer, root wire.Ref) {
	b := core.New(peer, root)
	fut := b.Root().CallRO("Stat")
	_ = fut.Err() // want `future fut is read before the owning batch's Flush`
	_ = b.Flush(context.Background())
}

func typedPreFlush(peer *rmi.Peer, root wire.Ref) {
	b := core.New(peer, root)
	tf := core.Typed[int64](b.Root().CallRO("Size"))
	_, _ = tf.Get() // want `future tf is read before the owning batch's Flush`
	_ = b.Flush(context.Background())
}

func chainedRead(peer *rmi.Peer, root wire.Ref) {
	b := core.New(peer, root)
	_, _ = b.Root().Call("Get").Get() // want `read in the same expression that records it`
	_ = b.Flush(context.Background())
}

func readAfterFlush(peer *rmi.Peer, root wire.Ref) error {
	b := core.New(peer, root)
	fut := b.Root().Call("Get")
	if err := b.Flush(context.Background()); err != nil {
		return err
	}
	_, err := fut.Get()
	return err
}

func typedAfterFlush(peer *rmi.Peer, root wire.Ref) (int64, error) {
	b := core.New(peer, root)
	tf := core.Typed[int64](b.Root().CallRO("Size"))
	if err := b.Flush(context.Background()); err != nil {
		return 0, err
	}
	return tf.Get()
}

// A future received from elsewhere is assumed settled by its producer.
func paramFuture(fut *core.Future) (any, error) {
	return fut.Get()
}

// Futures are legal call arguments before the flush (argument splicing).
func splicedArgument(peer *rmi.Peer, root wire.Ref) error {
	b := core.New(peer, root)
	dir := b.Root().Call("Lookup", "etc")
	b.Root().Call("Open", dir)
	return b.Flush(context.Background())
}

func suppressedRead(peer *rmi.Peer, root wire.Ref) {
	b := core.New(peer, root)
	fut := b.Root().Call("Get")
	//brmivet:ignore futurederef exercising core.ErrPending on purpose
	_, _ = fut.Get()
	_ = b.Flush(context.Background())
}
