// Cross-package fixture for readonlypure: the Sizer interface and its
// //brmi:readonly annotation live in the readonlypure fixture package and
// reach this implementation via the exported package fact.
package readonlypure_impl

import "readonlypure"

var _ readonlypure.Sizer = (*cachedSizer)(nil)
var _ readonlypure.Sizer = (*cleanSizer)(nil)

type cachedSizer struct {
	sizes map[string]int64
	last  string
}

func (c *cachedSizer) Size(path string) (int64, error) {
	c.last = path // want `writes receiver state \(c.last\)`
	return c.sizes[path], nil
}

type cleanSizer struct {
	sizes map[string]int64
}

func (c *cleanSizer) Size(path string) (int64, error) {
	return c.sizes[path], nil
}
