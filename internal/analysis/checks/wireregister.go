package checks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/brmimark"
)

// WireRegister checks that every named struct type crossing the wire — as
// an argument to a recording call (Proxy.Call, CallRO, CallBatch,
// CallBatchExport, CallCursor, Peer.Call) or as a parameter/result of a
// //brmi:remote interface method — is registered with the wire codec
// (wire.Register, MustRegister, RegisterError, RegisterCompiled).
// An unregistered type encodes fine on the sender (encode is reflective)
// but the receiver cannot decode it: the call fails at runtime with an
// unknown-type error, typically only on the first code path that ships the
// type. Registrations are collected per package and exported as a fact, so
// a type registered by its declaring package's init is recognized at call
// sites in any importing package.
var WireRegister = &analysis.Analyzer{
	Name: "wireregister",
	Doc: "report struct types passed in remote calls without a wire.Register " +
		"registration; the receiver cannot decode them",
	Run: runWireRegister,
}

// RegisteredFact is the package fact wireregister exports: the
// package-path-qualified names of the types the package registers with the
// wire codec.
type RegisteredFact struct {
	Types []string
}

// wireNative lists named types the codec handles without registration, in
// "pkgpath.Name" form. Basic types, []byte, strings etc. never reach the
// struct check.
var wireNative = map[string]bool{
	"time.Time":               true,
	wirePath + ".Ref":         true,
	wirePath + ".RemoteError": true,
}

// recordingMethods are the proxy methods whose variadic arguments are
// wire-encoded. The value is the index of the first encoded argument.
var recordingMethods = map[string]int{
	"Call": 1, "CallRO": 1, "CallBatch": 1, "CallBatchExport": 1, "CallCursor": 1,
}

func runWireRegister(pass *analysis.Pass) error {
	registered := collectRegistrations(pass)
	if len(registered) > 0 {
		fact := RegisteredFact{Types: make([]string, 0, len(registered))}
		for k := range registered {
			fact.Types = append(fact.Types, k)
		}
		sort.Strings(fact.Types)
		pass.ExportPackageFact(&fact)
	}
	for _, imp := range pass.Pkg.Imports() {
		var fact RegisteredFact
		if pass.ImportPackageFact(imp.Path(), &fact) {
			for _, k := range fact.Types {
				registered[k] = true
			}
		}
	}

	w := &wrScope{pass: pass, registered: registered, seen: map[string]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				w.checkCall(call)
			}
			return true
		})
		w.checkRemoteIfaces(f)
	}
	return nil
}

// collectRegistrations finds the wire registrations made by this unit and
// returns the qualified names of the registered types.
func collectRegistrations(pass *analysis.Pass) map[string]bool {
	registered := make(map[string]bool)
	add := func(t types.Type) {
		if n := namedType(t); n != nil {
			registered[typeKey(n)] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != wirePath {
				return true
			}
			switch fn.Name() {
			case "Register", "MustRegister", "RegisterError", "MustRegisterError":
				if len(call.Args) >= 2 {
					add(pass.TypesInfo.Types[call.Args[1]].Type)
				}
			case "RegisterCompiled", "MustRegisterCompiled":
				// The registered type is the instantiation's type argument.
				if id := calleeIdent(call); id != nil {
					if inst, ok := pass.TypesInfo.Instances[id]; ok && inst.TypeArgs.Len() > 0 {
						add(inst.TypeArgs.At(0))
					}
				}
			}
			return true
		})
	}
	return registered
}

type wrScope struct {
	pass       *analysis.Pass
	registered map[string]bool
	seen       map[string]bool // "filepos|typekey" report de-dup
}

// checkCall inspects the encoded arguments of a recording call.
func (w *wrScope) checkCall(call *ast.CallExpr) {
	recv, method, ok := methodCall(w.pass.TypesInfo, call)
	if !ok {
		return
	}
	first, isRecording := recordingMethods[method.Name()]
	if !isRecording {
		return
	}
	recvType := w.pass.TypesInfo.Types[recv].Type
	switch {
	case isNamed(recvType, corePath, "Proxy") || isNamed(recvType, clusterPath, "Proxy"):
	case method.Name() == "Call" && isNamed(recvType, rmiPath, "Peer"):
		first = 3 // Call(ctx, ref, method, args...)
	default:
		return
	}
	for i, arg := range call.Args {
		if i < first {
			continue
		}
		t := w.pass.TypesInfo.Types[arg].Type
		w.checkType(arg.Pos(), t, func(key string) string {
			return fmt.Sprintf("%s is passed to %s but never registered with wire.Register; the receiver cannot decode it", key, method.Name())
		})
	}
}

// checkRemoteIfaces checks the parameter and result types of every
// //brmi:remote interface method in f.
func (w *wrScope) checkRemoteIfaces(f *ast.File) {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if _, remote := brmimark.Has(brmimark.Remote, gd.Doc, ts.Doc); !remote {
				continue
			}
			it, ok := ts.Type.(*ast.InterfaceType)
			if !ok {
				continue
			}
			for _, m := range it.Methods.List {
				if len(m.Names) == 0 {
					continue
				}
				ft, ok := m.Type.(*ast.FuncType)
				if !ok {
					continue
				}
				iface, method := ts.Name.Name, m.Names[0].Name
				report := func(key string) string {
					return fmt.Sprintf("%s crosses the wire in //brmi:remote method %s.%s but is never registered with wire.Register", key, iface, method)
				}
				for _, p := range ft.Params.List {
					w.checkType(p.Type.Pos(), w.pass.TypesInfo.Types[p.Type].Type, report)
				}
				if ft.Results != nil {
					for _, r := range ft.Results.List {
						w.checkType(r.Type.Pos(), w.pass.TypesInfo.Types[r.Type].Type, report)
					}
				}
			}
		}
	}
}

// checkType reports the named struct types inside t (under pointers,
// slices, arrays, and maps) that lack a wire registration.
func (w *wrScope) checkType(pos token.Pos, t types.Type, msg func(key string) string) {
	if t == nil {
		return
	}
	switch x := types.Unalias(t).(type) {
	case *types.Pointer:
		w.checkType(pos, x.Elem(), msg)
		return
	case *types.Slice:
		w.checkType(pos, x.Elem(), msg)
		return
	case *types.Array:
		w.checkType(pos, x.Elem(), msg)
		return
	case *types.Map:
		w.checkType(pos, x.Key(), msg)
		w.checkType(pos, x.Elem(), msg)
		return
	}
	n := namedType(t)
	if n == nil {
		return
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return
	}
	if isSpliceNative(n) {
		return
	}
	key := typeKey(n)
	if wireNative[key] || w.registered[key] {
		return
	}
	dedup := fmt.Sprintf("%d|%s", pos, key)
	if w.seen[dedup] {
		return
	}
	w.seen[dedup] = true
	w.pass.Reportf(pos, "%s", msg(key))
}

// typeKey renders a named type as "pkgpath.Name".
func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// calleeIdent returns the identifier of the called function, through
// explicit instantiation and package selectors.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ix.X
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	}
	return nil
}
