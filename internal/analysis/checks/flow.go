package checks

import "go/ast"

// flowClient parameterizes the structured control-flow walker shared by the
// path-sensitive analyzers (unflushed, poolcheck). S is the mutable
// per-path state, cloned at branches and re-joined after them.
type flowClient[S any] interface {
	// Clone returns an independent copy of the path state.
	Clone(st S) S
	// Events processes the creation/use/discharge events of an expression
	// or simple statement, in source order, mutating st.
	Events(n ast.Node, st S)
	// DeferEvents processes a deferred call, which runs at return rather
	// than in source order; clients that care about ordering handle it
	// separately.
	DeferEvents(call ast.Node, st S)
	// AtReturn is called at each return point with the path state; ret is
	// nil for the implicit return at the end of the body. The return's own
	// result expressions have already been fed through Events.
	AtReturn(st S, ret *ast.ReturnStmt)
	// Join folds branch end-states into st; terms[i] reports whether
	// branch i terminated (cannot fall through to the join point).
	Join(st S, branches []S, terms []bool)
	// MergeLoop folds a loop body's end state into st, assuming the body
	// may have run.
	MergeLoop(st S, body S)
	// GoTo is called on a goto statement, which the walker does not model;
	// clients are expected to stop reporting for the whole function.
	GoTo()
}

// walkFlow drives c over one function body.
func walkFlow[S any](c flowClient[S], body *ast.BlockStmt, st S) {
	if !flowStmts(c, body.List, st) {
		c.AtReturn(st, nil)
	}
}

// flowStmts walks a statement list with the given path state, returning
// whether the path terminates (every sub-path returns, panics, or breaks).
func flowStmts[S any](c flowClient[S], stmts []ast.Stmt, st S) bool {
	for _, stmt := range stmts {
		if flowStmt(c, stmt, st) {
			return true
		}
	}
	return false
}

func flowStmt[S any](c flowClient[S], stmt ast.Stmt, st S) bool {
	switch x := stmt.(type) {
	case *ast.BlockStmt:
		return flowStmts(c, x.List, st)

	case *ast.IfStmt:
		if x.Init != nil {
			flowStmt(c, x.Init, st)
		}
		c.Events(x.Cond, st)
		thenSt := c.Clone(st)
		thenTerm := flowStmts(c, x.Body.List, thenSt)
		elseSt := c.Clone(st)
		elseTerm := false
		if x.Else != nil {
			elseTerm = flowStmt(c, x.Else, elseSt)
		}
		c.Join(st, []S{thenSt, elseSt}, []bool{thenTerm, elseTerm})
		return thenTerm && elseTerm && x.Else != nil

	case *ast.ForStmt:
		if x.Init != nil {
			flowStmt(c, x.Init, st)
		}
		if x.Cond != nil {
			c.Events(x.Cond, st)
		}
		bodySt := c.Clone(st)
		flowStmts(c, x.Body.List, bodySt)
		if x.Post != nil {
			flowStmt(c, x.Post, bodySt)
		}
		// The body may run; a discharge inside it optimistically covers
		// later paths (the walkers catch missing discharges, not
		// zero-iteration loops).
		c.MergeLoop(st, bodySt)
		return false

	case *ast.RangeStmt:
		c.Events(x.X, st)
		bodySt := c.Clone(st)
		flowStmts(c, x.Body.List, bodySt)
		c.MergeLoop(st, bodySt)
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return flowSwitch(c, stmt, st)

	case *ast.LabeledStmt:
		return flowStmt(c, x.Stmt, st)

	case *ast.BranchStmt:
		// break/continue end this path inside the enclosing construct;
		// goto is not modeled.
		if x.Tok.String() == "goto" {
			c.GoTo()
		}
		return true

	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.Events(r, st)
		}
		c.AtReturn(st, x)
		return true

	case *ast.DeferStmt:
		// A deferred discharge runs on every subsequent return path.
		c.DeferEvents(x.Call, st)
		return false

	default:
		c.Events(stmt, st)
		return false
	}
}

func flowSwitch[S any](c flowClient[S], stmt ast.Stmt, st S) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch x := stmt.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			flowStmt(c, x.Init, st)
		}
		if x.Tag != nil {
			c.Events(x.Tag, st)
		}
		body = x.Body
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			flowStmt(c, x.Init, st)
		}
		c.Events(x.Assign, st)
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	var branchSts []S
	var branchTerms []bool
	for _, clause := range body.List {
		cSt := c.Clone(st)
		term := false
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.Events(e, st)
			}
			term = flowStmts(c, cl.Body, cSt)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				flowStmt(c, cl.Comm, cSt)
			}
			term = flowStmts(c, cl.Body, cSt)
		}
		branchSts = append(branchSts, cSt)
		branchTerms = append(branchTerms, term)
	}
	// A switch without a default can fall through with the pre-state.
	if _, isSelect := stmt.(*ast.SelectStmt); !isSelect && !hasDefault {
		branchSts = append(branchSts, c.Clone(st))
		branchTerms = append(branchTerms, false)
	}
	c.Join(st, branchSts, branchTerms)
	allTerm := len(branchSts) > 0
	for _, t := range branchTerms {
		allTerm = allTerm && t
	}
	return allTerm
}
