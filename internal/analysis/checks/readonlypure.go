package checks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/brmimark"
)

// ReadonlyPure checks that the implementation of every //brmi:readonly
// interface method actually is readonly: no writes to receiver fields, no
// stores through receiver-reachable pointers, no calls to mutating methods
// on receiver state, no escape of the receiver to arbitrary callees.
//
// brmigen's parse-time validation covers the signature shape (serializable
// result, value parameters); it cannot see implementation bodies — an
// annotated method that mutates state silently serves stale reads from the
// lease cache (PR 7), the proxy-contract hazard the Object Proxy Patterns
// paper calls out. This analyzer closes that gap.
//
// Annotations are discovered from interface syntax and exported as a
// package fact (ReadonlyFact), so implementations in other packages are
// checked against interfaces they import.
var ReadonlyPure = &analysis.Analyzer{
	Name: "readonlypure",
	Doc: "check that //brmi:readonly method implementations do not mutate receiver " +
		"state; an impure readonly method poisons the client lease cache",
	Run: runReadonlyPure,
}

// ReadonlyFact is the package fact readonlypure exports: the
// //brmi:readonly-annotated methods of each interface declared in the
// package, keyed by interface name.
type ReadonlyFact struct {
	Ifaces map[string][]string
}

// mutexAllowed are the sync/sync.atomic methods a readonly body may call
// on receiver state: locking for consistent reads, and atomic loads.
var mutexAllowed = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true, "RLocker": true, "Load": true,
}

func runReadonlyPure(pass *analysis.Pass) error {
	local := collectReadonlyAnnotations(pass.Files)
	if len(local.Ifaces) > 0 {
		pass.ExportPackageFact(&local)
	}

	// Interfaces in scope: this package's, plus annotated interfaces of
	// every imported package (via facts).
	type roIface struct {
		pkg     *types.Package
		name    string
		iface   *types.Interface
		methods []string
	}
	var ifaces []roIface
	resolve := func(pkg *types.Package, fact *ReadonlyFact) {
		for name, methods := range fact.Ifaces {
			obj := pkg.Scope().Lookup(name)
			if obj == nil {
				continue
			}
			it, ok := obj.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			ifaces = append(ifaces, roIface{pkg: pkg, name: name, iface: it, methods: methods})
		}
	}
	resolve(pass.Pkg, &local)
	for _, imp := range pass.Pkg.Imports() {
		var fact ReadonlyFact
		if pass.ImportPackageFact(imp.Path(), &fact) {
			resolve(imp, &fact)
		}
	}
	if len(ifaces) == 0 {
		return nil
	}

	// Index this package's method declarations by (receiver type name,
	// method name) for body lookup and helper recursion.
	decls := indexMethodDecls(pass)

	checked := map[string]bool{} // "Type.Method" de-dup across interfaces
	scope := pass.Pkg.Scope()
	for _, tname := range scope.Names() {
		obj, ok := scope.Lookup(tname).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		for _, ri := range ifaces {
			if !types.Implements(named, ri.iface) && !types.Implements(types.NewPointer(named), ri.iface) {
				continue
			}
			// The annotated methods of an implemented interface must be
			// pure in the implementation.
			readonlySet := make(map[string]bool, len(ri.methods))
			for _, m := range ri.methods {
				readonlySet[m] = true
			}
			for _, m := range ri.methods {
				key := tname + "." + m
				if checked[key] {
					continue
				}
				decl := decls[declKey{tname, m}]
				if decl == nil {
					continue // promoted from an embedded type elsewhere
				}
				checked[key] = true
				p := &purity{
					pass:     pass,
					decls:    decls,
					typeName: tname,
					readonly: readonlySet,
					memo:     map[*ast.FuncDecl]bool{},
					visiting: map[*ast.FuncDecl]bool{},
				}
				p.checkMethod(decl, fmt.Sprintf("%s.%s", ri.name, m), true)
			}
		}
	}
	return nil
}

// collectReadonlyAnnotations scans interface declarations for
// //brmi:readonly method annotations.
func collectReadonlyAnnotations(files []*ast.File) ReadonlyFact {
	fact := ReadonlyFact{Ifaces: map[string][]string{}}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok {
					continue
				}
				for _, m := range it.Methods.List {
					if len(m.Names) == 0 {
						continue
					}
					if _, found := brmimark.Has(brmimark.Readonly, m.Doc, m.Comment); found {
						fact.Ifaces[ts.Name.Name] = append(fact.Ifaces[ts.Name.Name], m.Names[0].Name)
					}
				}
			}
		}
	}
	return fact
}

type declKey struct {
	typeName string
	method   string
}

func indexMethodDecls(pass *analysis.Pass) map[declKey]*ast.FuncDecl {
	decls := make(map[declKey]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			t := fd.Recv.List[0].Type
			if se, isStar := t.(*ast.StarExpr); isStar {
				t = se.X
			}
			if ix, isIx := t.(*ast.IndexExpr); isIx { // generic receiver
				t = ix.X
			}
			if id, isIdent := t.(*ast.Ident); isIdent {
				decls[declKey{id.Name, fd.Name.Name}] = fd
			}
		}
	}
	return decls
}

// purity checks one implementation type's methods for readonly violations.
type purity struct {
	pass     *analysis.Pass
	decls    map[declKey]*ast.FuncDecl
	typeName string
	readonly map[string]bool
	memo     map[*ast.FuncDecl]bool // decl -> pure
	visiting map[*ast.FuncDecl]bool
}

// checkMethod analyzes decl. When report is true, violations are
// diagnostics attributed to the annotated interface method ifaceMethod;
// when false (helper recursion) it only computes purity.
func (p *purity) checkMethod(decl *ast.FuncDecl, ifaceMethod string, report bool) (pure bool) {
	if done, ok := p.memo[decl]; ok && !report {
		return done
	}
	if p.visiting[decl] {
		return true // recursion: optimistically pure; the outer frame decides
	}
	p.visiting[decl] = true
	defer func() {
		p.visiting[decl] = false
		p.memo[decl] = pure
	}()

	recv := p.receiverObj(decl)
	if recv == nil {
		return true
	}
	info := p.pass.TypesInfo
	aliases := map[types.Object]bool{} // receiver-reachable pointers

	pure = true
	violate := func(pos token.Pos, format string, args ...any) {
		pure = false
		if report {
			p.pass.Reportf(pos, "(%s).%s implements //brmi:readonly %s but %s",
				p.typeName, decl.Name.Name, ifaceMethod, fmt.Sprintf(format, args...))
		}
	}

	isRecvReachable := func(e ast.Expr) bool {
		obj := rootObj(info, e)
		return obj != nil && (obj == recv || aliases[obj])
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					continue // rebinding a local; aliasing handled below
				}
				if isRecvReachable(lhs) {
					violate(lhs.Pos(), "writes receiver state (%s)", exprString(lhs))
				}
			}
			// Track pointer/reference aliases of receiver state.
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					id, isIdent := ast.Unparen(lhs).(*ast.Ident)
					if !isIdent {
						continue
					}
					rhs := ast.Unparen(x.Rhs[i])
					if ref, isRef := rhs.(*ast.UnaryExpr); isRef && ref.Op == token.AND && isRecvReachable(ref.X) {
						if obj := info.ObjectOf(id); obj != nil {
							aliases[obj] = true
						}
						continue
					}
					if isRecvReachable(rhs) && isRefType(info.Types[x.Rhs[i]].Type) {
						if obj := info.ObjectOf(id); obj != nil {
							aliases[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if isRecvReachable(x.X) {
				violate(x.Pos(), "writes receiver state (%s)", exprString(x.X))
			}
		case *ast.SendStmt:
			if isRecvReachable(x.Chan) {
				violate(x.Pos(), "sends on a receiver-reachable channel")
			}
		case *ast.UnaryExpr:
			// Taking the address of receiver state outside the alias
			// tracking above leaks a mutable pointer.
			if x.Op == token.AND && isRecvReachable(x.X) {
				if _, isField := ast.Unparen(x.X).(*ast.SelectorExpr); isField {
					violate(x.Pos(), "takes the address of receiver state (%s)", exprString(x.X))
				}
			}
			return true
		case *ast.CallExpr:
			p.checkCall(x, recv, aliases, isRecvReachable, violate)
			return true
		}
		return true
	})
	return pure
}

func (p *purity) checkCall(call *ast.CallExpr, recv types.Object, aliases map[types.Object]bool, isRecvReachable func(ast.Expr) bool, violate func(token.Pos, string, ...any)) {
	info := p.pass.TypesInfo
	// Type conversions and non-mutating builtins cannot write through their
	// operands; clear/copy/append/delete fall through to the argument checks.
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "len", "cap", "min", "max", "new", "make", "panic", "print", "println":
				return
			}
		}
	}
	if recvExpr, method, ok := methodCall(info, call); ok {
		if isRecvReachable(recvExpr) {
			pkg := method.Pkg()
			switch {
			case pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic"):
				if !mutexAllowed[method.Name()] {
					violate(call.Pos(), "calls mutating %s.%s on receiver state", pkg.Name(), method.Name())
				}
			case isOwnMethod(info, recvExpr, recv):
				// A call to another method of the same type: fine if that
				// method is itself declared readonly, or if its body
				// verifies pure.
				if p.readonly[method.Name()] {
					return
				}
				helper := p.decls[declKey{p.typeName, method.Name()}]
				if helper == nil {
					violate(call.Pos(), "calls method %s whose body is not visible for a readonly check", method.Name())
					return
				}
				if !p.checkMethod(helper, "", false) {
					violate(call.Pos(), "calls non-readonly method %s (mutates receiver state)", method.Name())
				}
			default:
				// Method on a receiver-reachable value of another type:
				// a pointer-receiver method can mutate it.
				if sig, isSig := method.Type().(*types.Signature); isSig && sig.Recv() != nil {
					if _, isPtr := types.Unalias(sig.Recv().Type()).(*types.Pointer); isPtr {
						violate(call.Pos(), "calls %s on receiver-reachable state (pointer receiver may mutate)", method.Name())
					}
				}
			}
		}
		// Receiver-reachable pointers as arguments escape below.
	}
	for _, arg := range call.Args {
		arg = ast.Unparen(arg)
		if ref, isRef := arg.(*ast.UnaryExpr); isRef && ref.Op == token.AND && isRecvReachable(ref.X) {
			violate(arg.Pos(), "passes the address of receiver state (%s) to a call", exprString(ref.X))
			continue
		}
		obj := rootObj(info, arg)
		if obj == nil {
			continue
		}
		if obj == recv {
			if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent && info.ObjectOf(id) == recv {
				// Passing the receiver itself (a pointer for
				// pointer-receiver impls) hands mutable access to the
				// callee.
				if _, isPtr := types.Unalias(info.Types[arg].Type).(*types.Pointer); isPtr {
					violate(arg.Pos(), "passes the receiver to %s (escapes the readonly scope)", callName(call))
				}
				continue
			}
			// Receiver state (not the receiver) used as an argument:
			// reference types hand the callee mutable access.
			if isRefType(info.Types[arg].Type) {
				violate(arg.Pos(), "passes receiver-reachable reference %s to a call", exprString(arg))
			}
			continue
		}
		if aliases[obj] {
			violate(arg.Pos(), "passes a receiver-reachable pointer (%s) to a call", exprString(arg))
		}
	}
}

func (p *purity) receiverObj(decl *ast.FuncDecl) types.Object {
	names := decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return p.pass.TypesInfo.ObjectOf(names[0])
}

// isOwnMethod reports whether the method receiver expression is the
// receiver variable itself (possibly deref'd/parenthesized), rather than
// state reached through it.
func isOwnMethod(info *types.Info, recvExpr ast.Expr, recv types.Object) bool {
	for {
		switch x := ast.Unparen(recvExpr).(type) {
		case *ast.Ident:
			return info.ObjectOf(x) == recv
		case *ast.StarExpr:
			recvExpr = x.X
		default:
			return false
		}
	}
}

// isRefType reports whether t shares underlying storage when copied.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan:
		return true
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "a call"
}
