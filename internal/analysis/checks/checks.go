// Package checks implements the brmivet analyzer suite: five static
// analyzers that enforce the batching programming model's usage rules at
// build time instead of runtime (or never). See DESIGN.md "Static
// analysis" for what each analyzer enforces and how to add one.
//
//   - futurederef — a future read (Get/Err) before the owning batch flushes
//   - unflushed   — a recorded batch that can reach a return unflushed
//   - readonlypure — a //brmi:readonly implementation that mutates state
//   - poolcheck   — transport.GetBuffer/PutBuffer pairing
//   - wireregister — struct types crossing the wire without wire.Register
package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Suite returns the canonical brmivet analyzer set, in the order brmivet
// runs and documents them. cmd/brmivet registers exactly this slice; the
// meta-test in cmd/brmivet pins the set.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		FutureDeref,
		Unflushed,
		ReadonlyPure,
		PoolCheck,
		WireRegister,
	}
}

// Import paths of the packages whose types the analyzers recognize.
const (
	corePath      = "repro/internal/core"
	clusterPath   = "repro/internal/cluster"
	transportPath = "repro/internal/transport"
	wirePath      = "repro/internal/wire"
	rmiPath       = "repro/internal/rmi"
)

// namedType returns the named type of t with aliases resolved and pointers
// stripped, or nil. Generic instantiations resolve to their origin.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}

// isNamed reports whether t (under pointers/aliases) is the named type
// path.name.
func isNamed(t types.Type, path, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == path && n.Obj().Name() == name
}

// isFutureType reports whether t is one of the model's future types:
// core/cluster Future (usually *Future) or TypedFuture.
func isFutureType(t types.Type) bool {
	return isNamed(t, corePath, "Future") || isNamed(t, corePath, "TypedFuture") ||
		isNamed(t, clusterPath, "Future") || isNamed(t, clusterPath, "TypedFuture")
}

// isBatchType reports whether t is an actual batch: a core/cluster Batch
// or a brmigen-generated batch wrapper (recognized structurally by its
// reserved Flush + BatchProxy methods) — but not a proxy or cursor
// derived from one.
func isBatchType(t types.Type) bool {
	if isNamed(t, corePath, "Batch") || isNamed(t, clusterPath, "Batch") {
		return true
	}
	n := namedType(t)
	if n == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	return lookupMethod(ms, "Flush") && lookupMethod(ms, "BatchProxy")
}

// isBatchLike reports whether t records calls for a flush: a core/cluster
// Batch, the recording proxies and cursors, or a brmigen-generated batch
// wrapper (recognized structurally by its reserved Flush + BatchProxy
// methods).
func isBatchLike(t types.Type) bool {
	if isNamed(t, corePath, "Batch") || isNamed(t, corePath, "Proxy") || isNamed(t, corePath, "Cursor") ||
		isNamed(t, clusterPath, "Batch") || isNamed(t, clusterPath, "Proxy") {
		return true
	}
	n := namedType(t)
	if n == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	return lookupMethod(ms, "Flush") && lookupMethod(ms, "BatchProxy")
}

// isSpliceNative reports whether values of t are handled specially by the
// call recorders and the rmi marshaller instead of the generic struct
// codec: batch proxies/cursors/futures are spliced into the plan, and
// rmi ref-holders (Ref() wire.Ref) and remote objects (rmi.RemoteBase)
// travel as a wire.Ref.
func isSpliceNative(t types.Type) bool {
	if isBatchLike(t) || isFutureType(t) {
		return true
	}
	n := namedType(t)
	if n == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		switch m.Name() {
		case "remoteObject":
			return true
		case "Ref":
			if sig, ok := m.Type().(*types.Signature); ok &&
				sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
				isNamed(sig.Results().At(0).Type(), wirePath, "Ref") {
				return true
			}
		}
	}
	return false
}

func lookupMethod(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// methodCall decomposes call into a method invocation: the receiver
// expression and the selected method object. ok is false for ordinary
// (package-level) function calls.
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method *types.Func, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, nil, false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn {
		return nil, nil, false
	}
	return sel.X, fn, true
}

// calledFunc resolves call to the package-level function it invokes
// (through generic instantiation), or nil for method calls and non-ident
// callees.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // explicit instantiation f[T](...)
		fun = ix.X
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		if _, isMethod := info.Selections[f]; isMethod {
			return nil
		}
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes the package-level function
// path.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	fn := calledFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// rootObj walks to the base identifier of an expression (through selectors,
// indexing, derefs, parens, and type assertions) and returns its object,
// or nil when the expression is not rooted in a plain identifier.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// chainRootObj walks to the base of a call chain: for
// batch.Root(ref).Call("m") it returns batch's object. It descends through
// method-call receivers as well as the selector forms rootObj handles.
func chainRootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			e = sel.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return rootObj(info, x)
		}
	}
}

// funcBodies yields every function body in the files: declarations and
// function literals, each analyzed as its own scope by the flow-local
// analyzers.
func funcBodies(files []*ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
	}
	return bodies
}

// identsUsed collects the objects of every identifier mentioned inside n.
func identsUsed(info *types.Info, n ast.Node) map[types.Object]bool {
	used := make(map[types.Object]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	return used
}
