package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

func TestFutureDeref(t *testing.T) {
	analysistest.Run(t, checks.FutureDeref, "futurederef")
}

func TestUnflushed(t *testing.T) {
	analysistest.Run(t, checks.Unflushed, "unflushed")
}

// The readonlypure_impl fixture implements an interface declared (and
// annotated) in the readonlypure fixture, exercising the package-fact
// path.
func TestReadonlyPure(t *testing.T) {
	analysistest.Run(t, checks.ReadonlyPure, "readonlypure", "readonlypure_impl")
}

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, checks.PoolCheck, "poolcheck")
}

// The wireregister_use fixture consumes a registration made by the
// wireregister fixture's init, exercising the package-fact path.
func TestWireRegister(t *testing.T) {
	analysistest.Run(t, checks.WireRegister, "wireregister", "wireregister_use")
}
