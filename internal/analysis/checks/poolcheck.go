package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// PoolCheck enforces the transport buffer pool protocol: every
// transport.GetBuffer must be balanced by a transport.PutBuffer (or the
// buffer must be handed to another owner), PutBuffer must not run twice on
// the same buffer, and a buffer must not be used after it went back to the
// pool. StreamWriter.SendOwned is put-family: it takes ownership and
// returns the buffer to the pool itself, so it discharges the obligation,
// and a PutBuffer or any use after it is a double-put / use-after-put.
// The obligation follows the buffer through the
// wire.MarshalAppend(buf, v)-style grow-and-reassign idiom: a []byte
// argument to a []byte-returning call carries its obligation into the
// result. The classic leak this catches is
//
//	payload, err := wire.MarshalAppend(transport.GetBuffer(), req)
//	if err != nil {
//	        return err // the pooled buffer is unreachable and never put back
//	}
//
// because MarshalAppend returns (nil, err) on failure.
var PoolCheck = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "check transport.GetBuffer/PutBuffer pairing: leaked buffers on error " +
		"paths, double puts, and use after put",
	Run: runPoolCheck,
}

// pcBuf is one tracked pool checkout.
type pcBuf struct {
	pos ast.Node
}

// pcFlags is the per-path protocol state of one checkout.
type pcFlags struct {
	put      bool // put back on every way to reach this point
	maybePut bool // put back on some path (suppresses the leak report)
	escaped  bool // ownership handed off: returned, stored, passed, captured
	sent     bool // discharged via StreamWriter.SendOwned (shapes messages)
}

func (f pcFlags) discharged() bool { return f.put || f.escaped }

type pcState map[*pcBuf]pcFlags

type pcScope struct {
	pass *analysis.Pass
	info *types.Info

	vars     map[types.Object]*pcBuf
	reported map[*pcBuf]bool
	gaveUp   bool
}

func runPoolCheck(pass *analysis.Pass) error {
	for _, body := range funcBodies(pass.Files) {
		s := &pcScope{
			pass:     pass,
			info:     pass.TypesInfo,
			vars:     make(map[types.Object]*pcBuf),
			reported: make(map[*pcBuf]bool),
		}
		walkFlow[pcState](s, body, make(pcState))
	}
	return nil
}

func (s *pcScope) Clone(st pcState) pcState {
	c := make(pcState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

func (s *pcScope) GoTo() { s.gaveUp = true }

// DeferEvents: a deferred PutBuffer runs at return, not here, so it
// satisfies the put obligation (maybePut) without making later uses of the
// buffer in the body look like use-after-put.
func (s *pcScope) DeferEvents(call ast.Node, st pcState) {
	ast.Inspect(call, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			for obj := range identsUsed(s.info, x) {
				if b, ok := s.vars[obj]; ok {
					f := st[b]
					f.escaped = true
					st[b] = f
				}
			}
			return false
		case *ast.CallExpr:
			if isPkgFunc(s.info, x, transportPath, "PutBuffer") && len(x.Args) == 1 {
				if obj := rootObj(s.info, x.Args[0]); obj != nil {
					if b, ok := s.vars[obj]; ok {
						f := st[b]
						f.maybePut = true
						st[b] = f
					}
				}
				return true
			}
			// Any other deferred call owning the buffer discharges it.
			for _, arg := range x.Args {
				if obj := rootObj(s.info, arg); obj != nil {
					if b, ok := s.vars[obj]; ok {
						f := st[b]
						f.escaped = true
						st[b] = f
					}
				}
			}
		}
		return true
	})
}

// Join: put only if put on every falling-through branch that saw the
// checkout; maybePut and escaped if on any. A branch whose state lacks
// the key predates the checkout (it happened in a sibling branch) and
// does not vote.
func (s *pcScope) Join(st pcState, branches []pcState, terms []bool) {
	keys := make(map[*pcBuf]bool)
	for _, b := range branches {
		for k := range b {
			keys[k] = true
		}
	}
	for k := range keys {
		out := pcFlags{put: true}
		live := false
		for i, b := range branches {
			if terms[i] {
				continue
			}
			v, ok := b[k]
			if !ok {
				continue // branch predates this checkout
			}
			live = true
			out.put = out.put && v.put
			out.maybePut = out.maybePut || v.maybePut
			out.escaped = out.escaped || v.escaped
			out.sent = out.sent || v.sent
		}
		if !live {
			out = pcFlags{put: true, maybePut: true}
		}
		out.maybePut = out.maybePut || out.put
		st[k] = out
	}
}

func (s *pcScope) MergeLoop(st pcState, bodySt pcState) {
	for k, v := range bodySt {
		cur := st[k]
		cur.put = cur.put || v.put
		cur.maybePut = cur.maybePut || v.maybePut
		cur.escaped = cur.escaped || v.escaped
		cur.sent = cur.sent || v.sent
		st[k] = cur
	}
}

// AtReturn marks returned buffers as escaped (the caller owns them), then
// reports checkouts that leak on this path. A buffer returned through an
// append-family call — return append(out, p...) — escapes the same way:
// its backing memory is handed to the caller.
func (s *pcScope) AtReturn(st pcState, ret *ast.ReturnStmt) {
	if ret != nil {
		for _, r := range ret.Results {
			if obj := rootObj(s.info, r); obj != nil {
				if b, ok := s.vars[obj]; ok {
					f := st[b]
					f.escaped = true
					st[b] = f
				}
			}
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isAppendFamily(s.info, call) {
				for _, arg := range call.Args {
					if obj := rootObj(s.info, arg); obj != nil {
						if b, ok := s.vars[obj]; ok {
							f := st[b]
							f.escaped = true
							st[b] = f
						}
					}
				}
			}
		}
	}
	if s.gaveUp {
		return
	}
	for b, f := range st {
		if f.put || f.maybePut || f.escaped || s.reported[b] {
			continue
		}
		s.reported[b] = true
		s.pass.Reportf(b.pos.Pos(), "buffer from transport.GetBuffer can reach a return without transport.PutBuffer; the pooled buffer leaks")
	}
}

// Events extracts checkout/put/use/escape events in source order.
func (s *pcScope) Events(n ast.Node, st pcState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			// Captured buffers escape to the closure.
			for obj := range identsUsed(s.info, x) {
				if b, ok := s.vars[obj]; ok {
					f := st[b]
					f.escaped = true
					st[b] = f
				}
			}
			return false
		case *ast.AssignStmt:
			s.assign(x, st)
			return true
		case *ast.CallExpr:
			s.callEvents(x, st)
			return true
		}
		return true
	})
}

// assign tracks checkouts, obligation-carrying reassignment, copies, and
// stores.
func (s *pcScope) assign(a *ast.AssignStmt, st pcState) {
	// A buffer stored into a field/index escapes; writing INTO a put
	// buffer (buf[0] = x) is a use after put.
	for _, lhs := range a.Lhs {
		if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
			continue
		}
		if obj := rootObj(s.info, lhs); obj != nil {
			if b, ok := s.vars[obj]; ok && st[b].put {
				s.report(lhs, useAfterMsg(st[b]))
			}
		}
		for _, rhs := range a.Rhs {
			if obj := rootObj(s.info, rhs); obj != nil {
				if b, ok := s.vars[obj]; ok {
					f := st[b]
					f.escaped = true
					st[b] = f
				}
			}
		}
	}

	var fresh, carried *pcBuf
	for _, rhs := range a.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			fresh, carried = s.rhsObligation(call, st)
			break
		}
	}
	for i, lhs := range a.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := s.info.ObjectOf(id)
		if obj == nil || !isByteSlice(obj.Type()) {
			continue
		}
		switch {
		case carried != nil:
			// buf, err = wire.MarshalAppend(buf, v): the result inherits
			// the argument's obligation.
			s.vars[obj] = carried
		case fresh != nil:
			s.vars[obj] = fresh
			st[fresh] = pcFlags{}
		default:
			if len(a.Rhs) == len(a.Lhs) {
				if src := rootObj(s.info, a.Rhs[i]); src != nil {
					if b, ok := s.vars[src]; ok {
						s.vars[obj] = b // copy shares tracking
						continue
					}
				}
			}
			// Unrelated reassignment: the variable no longer refers to the
			// checkout. If the checkout was still owed, it is now
			// unreachable and the leak is reported at the return points.
			delete(s.vars, obj)
		}
	}
}

// rhsObligation classifies a call on the right-hand side of an assignment:
// fresh when it checks a buffer out (transport.GetBuffer directly, or
// nested inside an append-family call: wire.MarshalAppend(
// transport.GetBuffer(), v)); carried when a tracked buffer flows through
// an append-family call into the result (buf, err =
// wire.MarshalAppend(buf, v)). Only append-family calls carry — a
// []byte-returning call like pool.Call(ctx, ep, payload) hands back a
// DIFFERENT buffer, and payload's obligation must stay on payload.
func (s *pcScope) rhsObligation(call *ast.CallExpr, st pcState) (fresh, carried *pcBuf) {
	if isPkgFunc(s.info, call, transportPath, "GetBuffer") {
		return &pcBuf{pos: call}, nil
	}
	if !isAppendFamily(s.info, call) {
		return nil, nil
	}
	for _, arg := range call.Args {
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if isPkgFunc(s.info, inner, transportPath, "GetBuffer") {
				return &pcBuf{pos: inner}, nil
			}
		}
		if obj := rootObj(s.info, arg); obj != nil {
			if b, ok := s.vars[obj]; ok && !st[b].put {
				return nil, b
			}
		}
	}
	return nil, nil
}

// isAppendFamily reports whether call grows-and-returns one of its slice
// arguments: the builtin append or wire.MarshalAppend.
func isAppendFamily(info *types.Info, call *ast.CallExpr) bool {
	if isPkgFunc(info, call, wirePath, "MarshalAppend") {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return b.Name() == "append"
		}
	}
	return false
}

// callEvents handles put, double put, use after put, and
// escape-by-argument.
func (s *pcScope) callEvents(call *ast.CallExpr, st pcState) {
	if isPkgFunc(s.info, call, transportPath, "PutBuffer") && len(call.Args) == 1 {
		if obj := rootObj(s.info, call.Args[0]); obj != nil {
			if b, ok := s.vars[obj]; ok {
				f := st[b]
				if f.put {
					if f.sent {
						s.report(call, "transport.PutBuffer is called on a buffer already handed to StreamWriter.SendOwned; SendOwned returns it to the pool itself")
					} else {
						s.report(call, "transport.PutBuffer is called twice on the same buffer")
					}
					return
				}
				f.put = true
				f.maybePut = true
				st[b] = f
			}
		}
		return
	}
	// StreamWriter.SendOwned takes ownership of its argument — the writer
	// frames the bytes in place and returns the buffer to the pool itself —
	// so it discharges the put obligation exactly like PutBuffer, and using
	// the buffer afterwards is the same protocol violation.
	if isSendOwned(s.info, call) && len(call.Args) == 1 {
		if obj := rootObj(s.info, call.Args[0]); obj != nil {
			if b, ok := s.vars[obj]; ok {
				f := st[b]
				if f.put {
					if f.sent {
						s.report(call, "buffer is handed to StreamWriter.SendOwned twice")
					} else {
						s.report(call, "buffer is handed to StreamWriter.SendOwned after transport.PutBuffer returned it to the pool")
					}
					return
				}
				f.put = true
				f.maybePut = true
				f.sent = true
				st[b] = f
			}
		}
		return
	}
	carriesObligation := returnsByteSlice(s.info, call)
	for _, arg := range call.Args {
		obj := rootObj(s.info, arg)
		if obj == nil {
			continue
		}
		b, ok := s.vars[obj]
		if !ok {
			continue
		}
		f := st[b]
		if f.put {
			s.report(arg, useAfterMsg(f))
			continue
		}
		// Passed to a callee that doesn't hand a []byte back: the callee
		// owns the buffer now (it may put it, send it, or retain it).
		if !carriesObligation {
			f.escaped = true
			st[b] = f
		}
	}
}

// useAfterMsg names the event that retired the buffer in a use-after
// diagnostic.
func useAfterMsg(f pcFlags) string {
	if f.sent {
		return "buffer is used after StreamWriter.SendOwned took ownership of it"
	}
	return "buffer is used after transport.PutBuffer returned it to the pool"
}

// isSendOwned reports whether call invokes
// (*transport.StreamWriter).SendOwned, the ownership-transferring chunk
// send.
func isSendOwned(info *types.Info, call *ast.CallExpr) bool {
	_, method, ok := methodCall(info, call)
	if !ok || method.Name() != "SendOwned" {
		return false
	}
	sig, isSig := method.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), transportPath, "StreamWriter")
}

func (s *pcScope) report(n ast.Node, msg string) {
	if s.gaveUp {
		return
	}
	s.pass.Reportf(n.Pos(), "%s", msg)
}

func isByteSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// returnsByteSlice reports whether any result of call is a []byte.
func returnsByteSlice(info *types.Info, call *ast.CallExpr) bool {
	t, ok := info.Types[call]
	if !ok {
		return false
	}
	if isByteSlice(t.Type) {
		return true
	}
	if tup, isTup := t.Type.(*types.Tuple); isTup {
		for i := 0; i < tup.Len(); i++ {
			if isByteSlice(tup.At(i).Type()) {
				return true
			}
		}
	}
	return false
}
