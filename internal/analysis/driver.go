package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"io"
	"strings"
)

// Run loads patterns from dir and applies every analyzer to every unit in
// dependency order, one shared fact store across all passes. The returned
// diagnostics have //brmivet:ignore suppressions already applied (including
// the stale- and malformed-ignore meta diagnostics) and are position-sorted
// per unit.
func Run(dir string, analyzers []*Analyzer, patterns ...string) (*Program, []Diagnostic, error) {
	prog, err := Load(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	var all []Diagnostic
	facts := NewFactStore()
	for _, u := range prog.Units {
		pkg, diags, err := RunUnit(prog, u, analyzers, facts)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, diags...)
		// Later units must import the source-checked package, not its bare
		// export data: the source check includes in-package test files,
		// whose symbols external test packages (x_test) reference. Units
		// run in dependency order, so the override is in place before any
		// importer needs it.
		if !strings.HasSuffix(u.Path, "_test") {
			prog.AddPackage(u.Path, pkg)
		}
	}
	return prog, all, nil
}

// RunUnit type-checks one unit and applies the analyzers to it, filtering
// the unit's diagnostics through its //brmivet:ignore comments. Facts
// exported by earlier units arrive through facts; facts this unit exports
// are added to it. The checked package is returned so callers (the
// analysistest runner) can make it importable by later units.
func RunUnit(prog *Program, u *Unit, analyzers []*Analyzer, facts *FactStore) (*types.Package, []Diagnostic, error) {
	pkg, info, err := prog.Check(u)
	if err != nil {
		return nil, nil, err
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      prog.Fset,
			Files:     u.Files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     facts,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, u.Path, err)
		}
	}
	return pkg, Suppress(prog.Fset, u.Files, diags), nil
}

// Print writes diagnostics in the canonical file:line:col: analyzer:
// message form.
func Print(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
}
