package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"

	"repro/internal/brmimark"
)

// Analyzer describes one static check. Run is called once per analysis
// unit (a package, with its in-package test files; external _test packages
// form their own unit), in dependency order, so facts exported by a
// dependency's pass are importable from a dependent's pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //brmivet:ignore comments. One lowercase word.
	Name string
	// Doc is the one-paragraph description printed by brmivet -list.
	Doc string
	// Run executes the analyzer on one unit.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one analysis unit.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *FactStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportPackageFact publishes fact (a pointer to a fact struct) for the
// unit's package. Later passes over packages that import this one can
// retrieve it with ImportPackageFact. Facts are keyed by (package path,
// fact type); exporting a second fact of the same type overwrites.
func (p *Pass) ExportPackageFact(fact any) {
	p.facts.set(p.Pkg.Path(), fact)
}

// ImportPackageFact copies the fact of *fact's type previously exported for
// the package with the given import path into fact, reporting whether one
// was found. Facts are keyed by path (not types.Object identity), so they
// survive the boundary between source-checked units and export-data
// imports.
func (p *Pass) ImportPackageFact(path string, fact any) bool {
	return p.facts.get(path, fact)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// FactStore holds package facts across the passes of one driver run.
// It is safe for concurrent use.
type FactStore struct {
	mu sync.Mutex
	m  map[factKey]any
}

type factKey struct {
	path string
	t    reflect.Type
}

// NewFactStore creates an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]any)}
}

func (s *FactStore) set(path string, fact any) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact must be a pointer, got %T", fact))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[factKey{path, t}] = fact
}

func (s *FactStore) get(path string, fact any) bool {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact must be a pointer, got %T", fact))
	}
	s.mu.Lock()
	stored, ok := s.m[factKey{path, t}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// --- suppression --------------------------------------------------------------

// ignoreDirective is one parsed //brmivet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// Suppress filters diags through the //brmivet:ignore comments of files. A
// diagnostic from analyzer A at line L is dropped when a comment
// "//brmivet:ignore A <reason>" sits on line L, or on its own at the end of
// a run of comment lines directly above L. Malformed directives — missing
// the analyzer name or the reason — are reported as diagnostics from the
// pseudo-analyzer "brmivet", as are directives that suppress nothing.
func Suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
		name string
	}
	directives := make(map[key]*ignoreDirective)
	var malformed []Diagnostic

	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := brmimark.Directive(c.Text)
				if !ok || name != brmimark.VetIgnore {
					continue
				}
				pos := fset.Position(c.Pos())
				analyzer, reason, _ := strings.Cut(args, " ")
				reason = strings.TrimSpace(reason)
				if analyzer == "" || reason == "" {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "brmivet",
						Message:  fmt.Sprintf("malformed //%s: want \"//%s <analyzer> <reason>\"", brmimark.VetIgnore, brmimark.VetIgnore),
					})
					continue
				}
				d := &ignoreDirective{analyzer: analyzer, reason: reason, pos: c.Pos()}
				// A directive covers its own line (trailing-comment form)
				// and the line below (own-line form above the flagged
				// statement).
				directives[key{pos.Filename, pos.Line, analyzer}] = d
				directives[key{pos.Filename, pos.Line + 1, analyzer}] = d
			}
		}
	}

	used := make(map[*ignoreDirective]bool)
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if dir, ok := directives[key{pos.Filename, pos.Line, d.Analyzer}]; ok {
			used[dir] = true
			continue
		}
		out = append(out, d)
	}

	// An ignore that matched nothing is stale: the misuse it excused is
	// gone (or the analyzer name is wrong), so it must go too.
	seen := make(map[*ignoreDirective]bool)
	for _, dir := range directives {
		if used[dir] || seen[dir] {
			continue
		}
		seen[dir] = true
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: "brmivet",
			Message:  fmt.Sprintf("//%s %s suppresses no diagnostic (stale, or wrong analyzer name)", brmimark.VetIgnore, dir.analyzer),
		})
	}
	out = append(out, malformed...)
	sortDiags(fset, out)
	return out
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
}
