package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Unit is one analysis unit: a package's compile files plus its
// in-package test files, or the external _test package of a directory.
// Test files ride along because the batching rules bind there too — an
// example or test reading a future pre-flush is exactly the misuse the
// analyzers exist for.
type Unit struct {
	// Path is the unit's import path; external test packages carry the
	// "_test" suffix the compiler gives them (e.g. "repro/internal/core_test").
	Path string
	Dir  string
	// Files are the unit's parsed files, with comments.
	Files []*ast.File
	// Deps are the import paths of module-internal dependencies, used to
	// order passes so package facts flow forward.
	Deps []string

	filenames []string
}

// Program is a loaded set of units plus everything needed to type-check
// them: one shared FileSet and an importer backed by compiler export data.
type Program struct {
	Fset  *token.FileSet
	Units []*Unit // in dependency order

	exports map[string]string // import path -> export data file
	imp     *unitImporter
}

// listPkg mirrors the fields of `go list -json` the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

// Load lists patterns (e.g. "./...") in dir with the go tool, compiles
// export data for every dependency, and returns the module units matched
// by the patterns, dependency-ordered. It needs no network: `go list
// -export` builds export data locally through the build cache.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One invocation produces both the target list and export data for the
	// whole dependency closure, test dependencies included.
	args := append([]string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Dir,Name,Export,ForTest,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	prog := &Program{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	var roots []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		// Test variants ("p [p.test]") and synthesized test mains are
		// compilation artifacts of -test; the plain entry carries the
		// file lists the units are built from.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Export != "" {
			if _, ok := prog.exports[p.ImportPath]; !ok {
				prog.exports[p.ImportPath] = p.Export
			}
		}
		if p.Module != nil {
			q := p
			roots = append(roots, &q)
		}
	}

	// -deps lists the whole closure; keep only packages the patterns
	// matched. go list prints dependencies first, so module membership
	// alone would over-select: resolve the patterns separately.
	matched, err := listMatched(dir, patterns)
	if err != nil {
		return nil, err
	}

	for _, p := range roots {
		if !matched[p.ImportPath] {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s: cgo packages are not supported", p.ImportPath)
		}
		unit := &Unit{Path: p.ImportPath, Dir: p.Dir}
		for _, f := range append(append([]string{}, p.GoFiles...), p.TestGoFiles...) {
			unit.filenames = append(unit.filenames, filepath.Join(p.Dir, f))
		}
		unit.Deps = moduleDeps(p.Module.Path, p.Imports, p.TestImports)
		prog.Units = append(prog.Units, unit)

		if len(p.XTestGoFiles) > 0 {
			x := &Unit{Path: p.ImportPath + "_test", Dir: p.Dir}
			for _, f := range p.XTestGoFiles {
				x.filenames = append(x.filenames, filepath.Join(p.Dir, f))
			}
			x.Deps = moduleDeps(p.Module.Path, p.XTestImports)
			// The external test package depends on the package under test.
			x.Deps = append(x.Deps, p.ImportPath)
			prog.Units = append(prog.Units, x)
		}
	}

	for _, u := range prog.Units {
		for _, name := range u.filenames {
			f, err := parser.ParseFile(prog.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			u.Files = append(u.Files, f)
		}
	}

	sortUnits(prog.Units)
	prog.imp = &unitImporter{
		gc:    importer.ForCompiler(prog.Fset, "gc", prog.lookup),
		extra: make(map[string]*types.Package),
	}
	return prog, nil
}

// listMatched resolves patterns to the exact import-path set they match.
func listMatched(dir string, patterns []string) (map[string]bool, error) {
	cmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	matched := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			matched[line] = true
		}
	}
	return matched, nil
}

func moduleDeps(modPath string, importLists ...[]string) []string {
	seen := make(map[string]bool)
	var deps []string
	for _, list := range importLists {
		for _, imp := range list {
			if (imp == modPath || strings.HasPrefix(imp, modPath+"/")) && !seen[imp] {
				seen[imp] = true
				deps = append(deps, imp)
			}
		}
	}
	sort.Strings(deps)
	return deps
}

// sortUnits orders units so every unit follows its module dependencies
// (facts flow forward). go list's -deps order already guarantees this for
// plain packages; the stable topological sort also slots external test
// units after their subjects.
func sortUnits(units []*Unit) {
	index := make(map[string]int, len(units))
	for i, u := range units {
		index[u.Path] = i
	}
	state := make(map[string]int, len(units)) // 0 unvisited, 1 visiting, 2 done
	var order []*Unit
	var visit func(u *Unit)
	visit = func(u *Unit) {
		switch state[u.Path] {
		case 1, 2:
			return // cycle (impossible in valid Go) or done
		}
		state[u.Path] = 1
		for _, d := range u.Deps {
			if i, ok := index[d]; ok {
				visit(units[i])
			}
		}
		state[u.Path] = 2
		order = append(order, u)
	}
	for _, u := range units {
		visit(u)
	}
	copy(units, order)
}

// lookup feeds export data to the gc importer.
func (p *Program) lookup(path string) (io.ReadCloser, error) {
	f, ok := p.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(f)
}

// unitImporter resolves imports from export data, with an override map for
// packages type-checked from source (analysistest fixture packages).
type unitImporter struct {
	gc    types.Importer
	extra map[string]*types.Package
}

func (i *unitImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := i.extra[path]; ok {
		return pkg, nil
	}
	return i.gc.Import(path)
}

// AddPackage registers a source-checked package under an import path, so
// later Check calls can import it. Used by the analysistest runner for
// multi-package fixtures.
func (p *Program) AddPackage(path string, pkg *types.Package) {
	p.imp.extra[path] = pkg
}

// Check type-checks a unit, returning the package and full type
// information. Imports resolve through export data (or AddPackage
// overrides), so units can be checked independently and in any order.
func (p *Program) Check(u *Unit) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: p.imp}
	pkg, err := conf.Check(u.Path, p.Fset, u.Files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-check %s: %v", u.Path, err)
	}
	return pkg, info, nil
}

// ParseDirUnit parses the .go files of dir (sorted, no build-tag logic —
// fixtures keep it simple) into a Unit with import path path. Used by the
// analysistest runner for fixture packages, which live under testdata and
// are invisible to go list.
func (p *Program) ParseDirUnit(dir, path string) (*Unit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	u := &Unit{Path: path, Dir: dir}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		u.Files = append(u.Files, f)
	}
	if len(u.Files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return u, nil
}
