// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which this module cannot
// depend on — see internal/analysis).
//
// Fixtures live under <pkgdir>/testdata/src/<name>/ and are ordinary Go
// packages, except invisible to the go tool (testdata). They import the
// real module packages (repro/internal/core, ...), which resolve through
// compiler export data, so the analyzers are exercised against the actual
// types they target in production. A fixture line expecting a diagnostic
// carries a trailing comment:
//
//	fut.Get() // want `before the batch's Flush`
//
// The backquoted string is a regexp matched against the diagnostic
// message; multiple want clauses on one line each need a match. Lines
// suppressed with //brmivet:ignore must NOT carry a want — the runner
// applies the same suppression filter the brmivet driver does, so
// suppression behavior is part of what fixtures pin.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	loadOnce sync.Once
	loadErr  error
	prog     *analysis.Program
	progMu   sync.Mutex
)

// load builds the shared Program once per test binary: export data for the
// whole module, so fixtures can import any repro package.
func load() (*analysis.Program, error) {
	loadOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loadErr = err
			return
		}
		prog, loadErr = analysis.Load(root, "./...")
	})
	return prog, loadErr
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run applies one analyzer to the named fixture packages (directories
// under testdata/src relative to the calling test's working directory),
// in order, with facts flowing between them, and compares the resulting
// diagnostics of each package against its // want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	p, err := load()
	if err != nil {
		t.Fatal(err)
	}
	// The shared Program's fixture-override map and FileSet are mutated
	// below; fixture runs are serialized across the test binary.
	progMu.Lock()
	defer progMu.Unlock()

	facts := analysis.NewFactStore()
	for _, name := range fixtures {
		dir := filepath.Join("testdata", "src", name)
		unit, err := p.ParseDirUnit(dir, name)
		if err != nil {
			t.Fatal(err)
		}
		pkg, diags, err := analysis.RunUnit(p, unit, []*analysis.Analyzer{a}, facts)
		if err != nil {
			t.Fatal(err)
		}
		p.AddPackage(name, pkg)
		check(t, p.Fset, unit.Files, diags)
	}
}

// check matches diagnostics against the want comments of files.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type wantKey struct {
		file string
		line int
	}
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[wantKey{pos.Filename, pos.Line}] = append(wants[wantKey{pos.Filename, pos.Line}], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := wantKey{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
}

// parseWant extracts the quoted regexps of a "// want `...` `...`" comment.
func parseWant(comment string) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(comment), "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, false
	}
	var patterns []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var quote byte
		switch rest[0] {
		case '`', '"':
			quote = rest[0]
		default:
			return nil, false
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, false
		}
		patterns = append(patterns, rest[1:1+end])
		rest = strings.TrimSpace(rest[end+2:])
	}
	return patterns, len(patterns) > 0
}
