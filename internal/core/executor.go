package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/wire"
)

// serverSeqBase is where server-assigned ids (cursor elements, per-element
// results) start, far above any client sequence number.
const serverSeqBase int64 = 1 << 40

// DefaultSessionTTL bounds how long a chained-batch session survives
// between flushes.
const DefaultSessionTTL = time.Minute

// Executor is the server side of BRMI: the system service that replays
// recorded batches against local objects (paper Fig. 2, invokeBatch). It is
// installed once per serving peer, which makes every exported object
// batch-callable — the analogue of adding invokeBatch to
// UnicastRemoteObject (§4.2).
type Executor struct {
	rmi.RemoteBase

	peer *rmi.Peer
	ttl  time.Duration

	// Replay metrics, nil (no-op) when the peer is uninstrumented.
	reg        *stats.Registry
	batchCalls *stats.Histogram // calls per received batch
	waveNs     *stats.Histogram // replay duration per InvokeBatch
	replayPar  *stats.Counter   // batches replayed with parallel root groups
	replaySeq  *stats.Counter   // batches replayed sequentially
	executed   *stats.Counter   // calls that reached method execution

	// Streaming bulk reads (GetBatch). Separate from executed: replica
	// accounting cross-checks calls_executed against client acks.
	getbatchBatches *stats.Counter // GetBatch requests served
	getbatchEntries *stats.Counter // entries streamed across all GetBatches

	mu       sync.Mutex
	sessions map[uint64]*session
	nextID   uint64
	stopped  bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// session is the retained server context of a batch chain (§3.5): the
// objects created by earlier flushes, addressable by sequence number, plus
// the failure of each failed call for dependency propagation. The maps are
// allocated lazily: value-only batches (the common hot path) never touch
// either.
type session struct {
	root     any
	extras   []any // additional roots, addressed at RootTarget-1-i
	policy   *Policy
	objects  map[int64]any
	failures map[int64]error
	nextBase int64
	expires  time.Time
	// shadow marks a replica replay session: execution is identical, but the
	// calls are excluded from core.calls_executed so the cluster-wide count
	// keeps matching client acks (replayed calls were already counted at the
	// primary).
	shadow bool
}

func (s *session) bindObject(seq int64, v any) {
	if s.objects == nil {
		s.objects = make(map[int64]any, 8)
	}
	s.objects[seq] = v
}

func (s *session) bindFailure(seq int64, err error) {
	if s.failures == nil {
		s.failures = make(map[int64]error, 8)
	}
	s.failures[seq] = err
}

// ExecOption configures the Executor.
type ExecOption func(*Executor)

// WithSessionTTL sets how long sessions survive between chained flushes.
func WithSessionTTL(d time.Duration) ExecOption {
	return func(e *Executor) { e.ttl = d }
}

// Install exports the batch executor on p at the reserved BRMI object id
// and starts the session expiry sweeper. Call Stop (or close the peer and
// Stop) on shutdown.
func Install(p *rmi.Peer, opts ...ExecOption) (*Executor, error) {
	e := &Executor{
		peer:     p,
		ttl:      DefaultSessionTTL,
		sessions: make(map[uint64]*session),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	if reg := p.Stats(); reg != nil {
		e.reg = reg
		e.batchCalls = reg.Histogram("core.batch_calls")
		e.waveNs = reg.Histogram("core.wave_ns")
		e.replayPar = reg.Counter("core.replay_parallel")
		e.replaySeq = reg.Counter("core.replay_sequential")
		e.executed = reg.Counter("core.calls_executed")
		e.getbatchBatches = reg.Counter("core.getbatch_batches")
		e.getbatchEntries = reg.Counter("core.getbatch_entries")
	}
	if _, err := p.ExportSystem(rmi.BatchObjID, e, rmi.BatchIface); err != nil {
		return nil, fmt.Errorf("brmi: install executor: %w", err)
	}
	p.HandleStream(GetBatchService, e.serveGetBatch)
	e.wg.Add(1)
	go e.sweepLoop()
	return e, nil
}

// Stop terminates the session sweeper. Idempotent.
func (e *Executor) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	close(e.done)
	e.wg.Wait()
}

// NumSessions reports the live chained-batch sessions (for tests).
func (e *Executor) NumSessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

func (e *Executor) sweepLoop() {
	defer e.wg.Done()
	interval := e.ttl / 4
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			now := time.Now()
			e.mu.Lock()
			for id, s := range e.sessions {
				if now.After(s.expires) {
					delete(e.sessions, id)
				}
			}
			e.mu.Unlock()
		case <-e.done:
			return
		}
	}
}

// InvokeBatch is the remote method every flush calls: it decodes nothing
// (the dispatch layer already did), replays the invocations in recording
// order, applies the exception policy, and returns per-call results
// (paper Fig. 2).
func (e *Executor) InvokeBatch(ctx context.Context, req *batchRequest) (*batchResponse, error) {
	return e.invokeBatch(ctx, req, false)
}

// ReplayShadow replays a shipped flush payload (as observed by
// Batch.OnShip and forwarded over the wire) against substitute root
// objects: root and extras are local export ids standing in for the
// payload's original roots, and session chains consecutive waves of the
// same batch exactly like the primary's KeepSession chain. The replay runs
// through the normal batch machinery — per-call order, dependency
// propagation, and exception policy are identical to the primary execution,
// which is what makes a deterministic batch command applicable to replica
// shadow state. It returns the (possibly retained) session id and the
// number of calls replayed.
func (e *Executor) ReplayShadow(ctx context.Context, shipped any, root uint64, extras []uint64, session uint64) (uint64, int, error) {
	orig, ok := shipped.(*batchRequest)
	if !ok {
		return 0, 0, fmt.Errorf("brmi: shadow replay payload is %T, not a batch request", shipped)
	}
	req := *orig
	req.Root = root
	req.Roots = extras
	req.Session = session
	resp, err := e.invokeBatch(ctx, &req, true)
	if err != nil {
		return 0, 0, err
	}
	return resp.Session, len(req.Calls), nil
}

func (e *Executor) invokeBatch(ctx context.Context, req *batchRequest, shadow bool) (*batchResponse, error) {
	sess, sessID, err := e.resolveSession(req)
	if err != nil {
		return nil, err
	}
	sess.shadow = sess.shadow || shadow

	e.batchCalls.Observe(int64(len(req.Calls)))
	var waveStart time.Time
	if e.reg != nil {
		waveStart = e.reg.Now()
	}
	resp := &batchResponse{}
	for restart := 0; ; restart++ {
		var results []callResult
		var again bool
		if req.Parallel {
			var ok bool
			results, again, ok = e.runBatchParallel(ctx, sess, req.Calls)
			if ok {
				e.replayPar.Inc()
			} else {
				results, again = e.runBatch(ctx, sess, req.Calls)
				e.replaySeq.Inc()
			}
		} else {
			results, again = e.runBatch(ctx, sess, req.Calls)
			e.replaySeq.Inc()
		}
		if !again || restart >= sess.policy.maxRestarts() {
			resp.Results = results
			resp.Restarts = int64(restart)
			break
		}
	}
	if e.reg != nil {
		e.waveNs.Observe(e.reg.Now().Sub(waveStart).Nanoseconds())
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if req.KeepSession && !e.stopped {
		sess.expires = time.Now().Add(e.ttl)
		e.sessions[sessID] = sess
		resp.Session = sessID
	} else {
		delete(e.sessions, sessID)
		resp.Session = 0
	}
	return resp, nil
}

func (e *Executor) resolveSession(req *batchRequest) (*session, uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Extra roots are re-resolved on every flush: a chained batch may add
	// roots between flushes, and ids are stable while exported.
	extras := make([]any, len(req.Roots))
	for i, id := range req.Roots {
		obj, ok := e.peer.LocalObject(id)
		if !ok {
			return nil, 0, e.missingRoot(id)
		}
		extras[i] = obj
	}
	if req.Session != 0 {
		sess, ok := e.sessions[req.Session]
		if !ok {
			return nil, 0, &SessionExpiredError{Session: req.Session}
		}
		sess.extras = extras
		return sess, req.Session, nil
	}
	root, ok := e.peer.LocalObject(req.Root)
	if !ok {
		return nil, 0, e.missingRoot(req.Root)
	}
	policy := req.Policy
	if policy == nil {
		policy = AbortPolicy()
	}
	e.nextID++
	sess := &session{
		root:     root,
		extras:   extras,
		policy:   policy,
		nextBase: serverSeqBase,
		expires:  time.Now().Add(e.ttl),
	}
	return sess, e.nextID, nil
}

// missingRoot classifies a batch root absent from the export table: an
// object migrated to a new home by the cluster rebalancer fails with the
// typed wrong-home error (so an epoch-aware client re-routes and retries),
// anything else with NoSuchObjectError.
func (e *Executor) missingRoot(id uint64) error {
	if wh, ok := e.peer.ForwardedObject(id); ok {
		return wh
	}
	return &rmi.NoSuchObjectError{ObjID: id}
}

// groupSeqSpan is the slice of the server-assigned id space each parallel
// root group allocates from, so concurrent groups never collide.
const groupSeqSpan int64 = 1 << 32

// runBatchParallel replays a multi-root batch with one goroutine per root
// group, under the client's explicit WithParallelRoots opt-in. It applies
// only when the recording PROVES the groups independent:
//
//   - the session carries no earlier-flush state (a chained reference
//     cannot be attributed to a group), and
//   - every call's target chain and every proxy argument stay within the
//     call's own root group (no cross-root dataflow, no argument that is
//     another root's proxy).
//
// Anything else reports ok=false and the caller replays sequentially, so
// the opt-in never changes results for dependent recordings. Within a
// group, program order is fully preserved; ACROSS groups, execution
// overlaps: abort (ActionBreak) scopes to the failing root's group, and
// policy-rule occurrence indices count per group. Each group runs against a
// shadow session with a disjoint server-id range; shadows merge into the
// real session afterwards so chained flushes keep working (a restart
// discards the shadows and the rerun decides again how to execute).
func (e *Executor) runBatchParallel(ctx context.Context, sess *session, calls []invocationData) ([]callResult, bool, bool) {
	if len(sess.objects) > 0 || len(sess.failures) > 0 {
		return nil, false, false
	}
	groups, ok := partitionRoots(calls, len(sess.extras))
	if !ok || len(groups) < 2 {
		return nil, false, false
	}

	results := make([]callResult, len(calls))
	shadows := make([]*session, len(groups))
	again := make([]bool, len(groups))
	var wg sync.WaitGroup
	for gi, idxs := range groups {
		shadow := &session{
			root:     sess.root,
			extras:   sess.extras,
			policy:   sess.policy,
			nextBase: serverSeqBase + int64(gi+1)*groupSeqSpan,
			shadow:   sess.shadow,
		}
		shadows[gi] = shadow
		gcalls := make([]invocationData, len(idxs))
		for j, idx := range idxs {
			gcalls[j] = calls[idx]
		}
		wg.Add(1)
		go func(gi int, idxs []int, gcalls []invocationData) {
			defer wg.Done()
			gres, rerun := e.runBatch(ctx, shadows[gi], gcalls)
			again[gi] = rerun
			for j := range gres {
				results[idxs[j]] = gres[j]
			}
		}(gi, idxs, gcalls)
	}
	wg.Wait()

	// Merge the shadows unconditionally, exactly as sequential replay binds
	// into the session on every run (including one a restart supersedes or
	// that exhausts maxRestarts): the returned results must stay resolvable
	// by a chained flush. A rerun overwrites these bindings; it replays
	// sequentially, since the merged state can no longer be attributed to
	// root groups.
	for _, shadow := range shadows {
		for k, v := range shadow.objects {
			sess.bindObject(k, v)
		}
		for k, err := range shadow.failures {
			sess.bindFailure(k, err)
		}
	}
	if next := serverSeqBase + int64(len(groups)+1)*groupSeqSpan; next > sess.nextBase {
		sess.nextBase = next
	}
	for _, rerun := range again {
		if rerun {
			return results, true, true
		}
	}
	return results, false, true
}

// partitionRoots assigns every call to the root its target chain descends
// from and reports the per-group call indices (recording order preserved),
// or ok=false when any call crosses groups.
func partitionRoots(calls []invocationData, extras int) ([][]int, bool) {
	rootCount := 1 + extras
	byRoot := make([][]int, rootCount)
	seqGroup := make(map[int64]int, len(calls))
	rootOf := func(seq int64) (int, bool) {
		idx := int(RootTarget - seq) // RootTarget → 0, extra root i → 1+i
		if idx < 0 || idx >= rootCount {
			return 0, false
		}
		return idx, true
	}
	for i := range calls {
		c := &calls[i]
		var g int
		if c.Target <= RootTarget {
			var ok bool
			if g, ok = rootOf(c.Target); !ok {
				return nil, false
			}
		} else {
			var ok bool
			if g, ok = seqGroup[c.Target]; !ok {
				return nil, false // produced by an earlier flush (or invalid)
			}
		}
		for _, a := range c.Args {
			if !a.IsRef {
				continue
			}
			if a.Seq <= RootTarget {
				// Another root's object as argument couples the groups.
				ag, ok := rootOf(a.Seq)
				if !ok || ag != g {
					return nil, false
				}
				continue
			}
			if ag, ok := seqGroup[a.Seq]; !ok || ag != g {
				return nil, false
			}
		}
		seqGroup[c.Seq] = g
		byRoot[g] = append(byRoot[g], i)
	}
	groups := byRoot[:0]
	for _, idxs := range byRoot {
		if len(idxs) > 0 {
			groups = append(groups, idxs)
		}
	}
	return groups, true
}

// execState threads the abort/restart condition through one run.
type execState struct {
	aborted  error // non-nil: skip everything after the break point
	restart  bool
	trackOcc bool           // policy has rules; occurrence indices matter
	occIndex map[string]int // per-method occurrence counter for policy rules
	argBuf   []any          // scratch argument slice, reused across calls
	outBuf   []any          // scratch result slice, reused across calls
}

// argSlice returns a scratch slice of length n. The callee must not retain
// it (InvokeLocal converts the elements and drops the slice).
func (st *execState) argSlice(n int) []any {
	if cap(st.argBuf) < n {
		st.argBuf = make([]any, n)
	}
	return st.argBuf[:n]
}

// runBatch replays calls once. It returns the per-call results and whether
// an ActionRestart demands re-execution.
func (e *Executor) runBatch(ctx context.Context, sess *session, calls []invocationData) ([]callResult, bool) {
	st := &execState{trackOcc: len(sess.policy.Rules) > 0}
	results := make([]callResult, len(calls))

	for i := 0; i < len(calls); i++ {
		call := &calls[i]
		if call.Kind == kindCursor {
			// Consume the cursor call and its contiguous owned sub-batch.
			j := i + 1
			for j < len(calls) && calls[j].owner() == call.Seq {
				j++
			}
			e.runCursor(ctx, sess, st, call, calls[i+1:j], results[i:j])
			if st.restart {
				return results, true
			}
			i = j - 1
			continue
		}
		if call.owner() != NoCursor {
			// Owned call without its cursor preceding it: recording bug.
			results[i] = callResult{Seq: call.Seq, Err: fmt.Errorf("brmi: orphan cursor call %s", call.Method)}
			continue
		}
		results[i] = e.runCall(ctx, sess, st, call, nil, st.nextOcc(call.Method))
		if st.restart {
			return results, true
		}
	}
	return results, false
}

// nextOcc returns the occurrence index of method (0-based count of its
// appearances so far), used by custom policy rules. Policies without rules
// never consult the index, so counting is skipped entirely for them.
func (st *execState) nextOcc(method string) int {
	if !st.trackOcc {
		return 0
	}
	if st.occIndex == nil {
		st.occIndex = make(map[string]int, 8)
	}
	occ := st.occIndex[method]
	st.occIndex[method] = occ + 1
	return occ
}

// runCall executes one non-cursor invocation. overlay, when non-nil, holds
// the per-element bindings of an in-progress cursor iteration. occ is the
// call's recording-order occurrence index for policy rule matching.
func (e *Executor) runCall(ctx context.Context, sess *session, st *execState, call *invocationData, overlay map[int64]any, occ int) callResult {
	res := callResult{Seq: call.Seq}

	if st.aborted != nil {
		res.Skipped = true
		res.Err = st.aborted
		e.markFailure(sess, overlay, call.Seq, st.aborted)
		return res
	}

	target, depErr := e.resolve(sess, overlay, call.Target)
	if depErr != nil {
		res.Skipped = true
		res.Err = depErr
		e.markFailure(sess, overlay, call.Seq, depErr)
		return res
	}

	args := st.argSlice(len(call.Args))
	for i, a := range call.Args {
		if !a.IsRef {
			args[i] = a.Val
			continue
		}
		v, depErr := e.resolve(sess, overlay, a.Seq)
		if depErr != nil {
			res.Skipped = true
			res.Err = depErr
			e.markFailure(sess, overlay, call.Seq, depErr)
			return res
		}
		args[i] = v
	}

	// Executed means "reached method execution": dependency-skipped and
	// abort-skipped calls are excluded, matching the client-side acked
	// count (the chaos harness cross-checks the two). Shadow replays are
	// excluded too — their calls were counted at the primary.
	if !sess.shadow {
		e.executed.Inc()
	}
	out, err := e.execWithPolicy(ctx, sess, st, target, call.Method, args, occ, &res)
	if err != nil {
		res.Err = err
		e.markFailure(sess, overlay, call.Seq, err)
		return res
	}
	if st.restart {
		return res
	}

	switch call.Kind {
	case kindRemote:
		v := single(out)
		if v == nil {
			err := fmt.Errorf("brmi: %s returned nil remote object", call.Method)
			res.Err = err
			e.markFailure(sess, overlay, call.Seq, err)
			return res
		}
		if _, ok := v.(rmi.Remote); !ok {
			err := &KindMismatchError{Method: call.Method, Want: "Call (result is not a remote object)"}
			res.Err = err
			e.markFailure(sess, overlay, call.Seq, err)
			return res
		}
		if call.Export && overlay == nil {
			// Pin the result as an exported reference: marshalling a remote
			// object yields its Ref, auto-exporting it under a marshal-grace
			// DGC lease if it was not exported already. Runs BEFORE bind so
			// a failed export leaves the call failed, not resolvable — a
			// dependent call must never execute against a producer the
			// client sees as failed.
			w, werr := e.peer.ToWire(v)
			if werr != nil {
				res.Err = fmt.Errorf("brmi: export result of %s: %w", call.Method, werr)
				e.markFailure(sess, overlay, call.Seq, res.Err)
				return res
			}
			ref, ok := w.(wire.Ref)
			if !ok {
				res.Err = fmt.Errorf("brmi: result of %s did not marshal to a reference", call.Method)
				e.markFailure(sess, overlay, call.Seq, res.Err)
				return res
			}
			res.Ref = ref
		}
		e.bind(sess, overlay, call.Seq, v)
	default: // kindValue
		v := single(out)
		if _, ok := v.(rmi.Remote); ok {
			err := &KindMismatchError{Method: call.Method, Want: "CallBatch"}
			res.Err = err
			e.markFailure(sess, overlay, call.Seq, err)
			return res
		}
		w, werr := e.peer.ToWire(v)
		if werr != nil {
			res.Err = fmt.Errorf("brmi: marshal result of %s: %w", call.Method, werr)
			return res
		}
		res.Value = w
	}
	return res
}

// execWithPolicy runs the method, applying the session's exception policy:
// Repeat retries in place, Break aborts the batch, Restart re-runs it,
// Continue records the error (paper §3.3).
func (e *Executor) execWithPolicy(ctx context.Context, sess *session, st *execState, target any, method string, args []any, occ int, res *callResult) ([]any, error) {
	var lastErr error
	maxAttempts := sess.policy.maxAttempts()
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			res.Attempts = int64(attempt)
		}
		// The scratch result buffer lives until the caller finishes with
		// this call's results; the next call's execution reuses it.
		out, err := e.peer.InvokeLocalAppend(ctx, target, method, args, st.outBuf)
		if err == nil {
			st.outBuf = out
			return out, nil
		}
		lastErr = err
		switch sess.policy.actionFor(err, method, occ) {
		case ActionRepeat:
			if attempt < maxAttempts {
				continue
			}
			return nil, lastErr // retries exhausted; record and move on
		case ActionRestart:
			st.restart = true
			return nil, lastErr
		case ActionContinue:
			return nil, lastErr
		default: // ActionBreak
			st.aborted = lastErr
			return nil, lastErr
		}
	}
}

// runCursor executes a cursor-creating call and its owned sub-batch once
// per element of the returned slice (§3.4, §4.2: "cursors are implemented
// by executing a sub-batch of methods for each item in the array").
func (e *Executor) runCursor(ctx context.Context, sess *session, st *execState, call *invocationData, owned []invocationData, results []callResult) {
	res := &results[0]
	res.Seq = call.Seq
	for k := range owned {
		results[1+k].Seq = owned[k].Seq
	}
	occ := st.nextOcc(call.Method)
	ownedOcc := make([]int, len(owned))
	for k := range owned {
		ownedOcc[k] = st.nextOcc(owned[k].Method)
	}

	fail := func(err error, skipped bool) {
		res.Err = err
		res.Skipped = skipped
		sess.bindFailure(call.Seq, err)
		for k := range owned {
			results[1+k].Err = err
			results[1+k].Skipped = true
			sess.bindFailure(owned[k].Seq, err)
		}
	}

	if st.aborted != nil {
		fail(st.aborted, true)
		return
	}
	target, depErr := e.resolve(sess, nil, call.Target)
	if depErr != nil {
		fail(depErr, true)
		return
	}
	args := make([]any, len(call.Args))
	for i, a := range call.Args {
		if !a.IsRef {
			args[i] = a.Val
			continue
		}
		v, depErr := e.resolve(sess, nil, a.Seq)
		if depErr != nil {
			fail(depErr, true)
			return
		}
		args[i] = v
	}

	if !sess.shadow {
		e.executed.Inc()
	}
	out, err := e.execWithPolicy(ctx, sess, st, target, call.Method, args, occ, res)
	if st.restart {
		return
	}
	if err != nil {
		fail(err, false)
		return
	}

	elems, err := sliceElements(single(out))
	if err != nil {
		err = &KindMismatchError{Method: call.Method, Want: "Call (result is not a slice)"}
		fail(err, false)
		return
	}

	n := len(elems)
	res.Count = int64(n)
	res.Base = sess.alloc(n)
	for i, el := range elems {
		sess.bindObject(res.Base+int64(i), el)
	}

	// Allocate per-element blocks for owned calls.
	for k := range owned {
		r := &results[1+k]
		r.Count = int64(n)
		switch owned[k].Kind {
		case kindValue:
			r.Block = make([]any, n)
			r.BlockErrs = make([]any, n)
		case kindRemote:
			r.Base = sess.alloc(n)
			r.BlockErrs = make([]any, n)
		case kindCursor:
			r.Err = ErrNestedCursor
		}
	}

	// Execute the sub-batch once per element ("all of the cursor operations
	// are performed at the point when the cursor value is created", §4.2).
	for i := 0; i < n; i++ {
		overlay := map[int64]any{call.Seq: elems[i]}
		for k := range owned {
			oc := &owned[k]
			r := &results[1+k]
			if oc.Kind == kindCursor {
				continue
			}
			elemRes := e.runCall(ctx, sess, st, oc, overlay, ownedOcc[k])
			if st.restart {
				return
			}
			switch oc.Kind {
			case kindValue:
				r.Block[i] = elemRes.Value
				if elemRes.Err != nil {
					r.BlockErrs[i] = elemRes.Err
				}
			case kindRemote:
				if elemRes.Err != nil {
					r.BlockErrs[i] = elemRes.Err
					// Chained batches address per-element results at
					// Base+i; record the failure there for propagation.
					sess.bindFailure(r.Base+int64(i), elemRes.Err)
				} else if v, ok := overlay[oc.Seq]; ok {
					sess.bindObject(r.Base+int64(i), v)
				}
			}
		}
		if st.aborted != nil {
			// Mark the untouched tail of every block with the abort error.
			for k := range owned {
				r := &results[1+k]
				if r.BlockErrs == nil {
					continue
				}
				for j := i + 1; j < n; j++ {
					r.BlockErrs[j] = st.aborted
				}
			}
			return
		}
	}
}

// resolve maps a sequence number to its live object, consulting the
// per-element overlay first, then the session. A sequence whose creating
// call failed yields that call's error, implementing dependency-aware
// exception propagation ("the get method of a future rethrows any exception
// on which the future's value depends", §3.3).
func (e *Executor) resolve(sess *session, overlay map[int64]any, seq int64) (any, error) {
	if seq == RootTarget {
		return sess.root, nil
	}
	if seq < RootTarget {
		// Bounds-check in int64: a far-out-of-range Target must not
		// truncate into a valid index on 32-bit platforms.
		if i := RootTarget - seq - 1; i < int64(len(sess.extras)) {
			return sess.extras[i], nil
		}
		return nil, fmt.Errorf("brmi: unknown batch root %d", seq)
	}
	if overlay != nil {
		if v, ok := overlay[seq]; ok {
			return v, nil
		}
		if err, ok := overlay[^seq].(error); ok { // per-element failure marker
			return nil, err
		}
	}
	if v, ok := sess.objects[seq]; ok {
		return v, nil
	}
	if err, ok := sess.failures[seq]; ok {
		return nil, err
	}
	return nil, fmt.Errorf("brmi: unknown batch object %d", seq)
}

// bind stores a call's remote result under its sequence number: in the
// overlay during a cursor iteration, else in the session.
func (e *Executor) bind(sess *session, overlay map[int64]any, seq int64, v any) {
	if overlay != nil {
		overlay[seq] = v
		return
	}
	sess.bindObject(seq, v)
}

// markFailure records a call's failure for dependency propagation.
func (e *Executor) markFailure(sess *session, overlay map[int64]any, seq int64, err error) {
	if overlay != nil {
		overlay[^seq] = err
		return
	}
	sess.bindFailure(seq, err)
}

// alloc reserves n consecutive server-assigned ids.
func (s *session) alloc(n int) int64 {
	base := s.nextBase
	s.nextBase += int64(n)
	if n == 0 {
		s.nextBase++
	}
	return base
}

// single collapses a method's results to one value, as remote methods have
// at most one non-error result in the paper's model; multi-result Go
// methods yield a slice. The multi-result slice is copied: the input may be
// the executor's reusable scratch buffer.
func single(out []any) any {
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		cp := make([]any, len(out))
		copy(cp, out)
		return cp
	}
}

// sliceElements returns the elements of any slice value.
func sliceElements(v any) ([]any, error) {
	if v == nil {
		return nil, fmt.Errorf("nil slice")
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Slice && rv.Kind() != reflect.Array {
		return nil, fmt.Errorf("%T is not a slice", v)
	}
	out := make([]any, rv.Len())
	for i := range out {
		out[i] = rv.Index(i).Interface()
	}
	return out, nil
}
