package core

import (
	"fmt"

	"repro/internal/wire"
)

// Action directs batch execution after a call throws (paper §3.3).
type Action int

// Actions, mirroring the paper's ExceptionAction enum.
const (
	// ActionBreak stops the batch; remaining calls are skipped.
	ActionBreak Action = iota + 1
	// ActionContinue records the error and keeps executing; calls that
	// depend on the failed one fail with its error.
	ActionContinue
	// ActionRepeat re-executes the failing call (bounded by MaxAttempts).
	ActionRepeat
	// ActionRestart re-executes the whole batch from its first call
	// (bounded by MaxRestarts).
	ActionRestart
)

func (a Action) String() string {
	switch a {
	case ActionBreak:
		return "Break"
	case ActionContinue:
		return "Continue"
	case ActionRepeat:
		return "Repeat"
	case ActionRestart:
		return "Restart"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// AnyIndex matches a rule against every position of a method in the batch.
const AnyIndex = -1

// Rule matches one (exception type, method, call index) combination to an
// action. Empty ErrType or Method and AnyIndex act as wildcards.
type Rule struct {
	// ErrType is the wire type name of the exception (wire.TypeNameOf).
	ErrType string
	// Method restricts the rule to calls of this method name.
	Method string
	// Index restricts the rule to the Index-th recorded call of that
	// method within the batch (0-based), or AnyIndex.
	Index int
	// Act is the action to take.
	Act Action
}

// Policy specifies how the server-side executor reacts to exceptions during
// batch replay. Policies are plain data — no mobile code (§3.3): the three
// paper policies are AbortPolicy, ContinuePolicy, and CustomPolicy values.
type Policy struct {
	// Default is the action for exceptions no rule matches.
	Default Action
	// Rules are evaluated most-specific-first (see actionFor).
	Rules []Rule
	// MaxAttempts bounds ActionRepeat executions of one call (total tries).
	MaxAttempts int
	// MaxRestarts bounds ActionRestart re-executions of the batch.
	MaxRestarts int
}

// Defaults for repeat/restart bounds; the paper leaves them unbounded, which
// would loop forever on a deterministic failure.
const (
	DefaultMaxAttempts = 3
	DefaultMaxRestarts = 3
)

// AbortPolicy aborts the batch on the first exception (the default, §3.3).
func AbortPolicy() *Policy {
	return &Policy{Default: ActionBreak, MaxAttempts: DefaultMaxAttempts, MaxRestarts: DefaultMaxRestarts}
}

// ContinuePolicy always continues past exceptions (§3.3).
func ContinuePolicy() *Policy {
	return &Policy{Default: ActionContinue, MaxAttempts: DefaultMaxAttempts, MaxRestarts: DefaultMaxRestarts}
}

// CustomPolicy starts from a Continue default and lets the caller add
// per-exception rules, mirroring the paper's CustomPolicy class.
func CustomPolicy() *Policy {
	return &Policy{Default: ActionContinue, MaxAttempts: DefaultMaxAttempts, MaxRestarts: DefaultMaxRestarts}
}

// SetDefaultAction sets the action used when no rule matches.
func (p *Policy) SetDefaultAction(a Action) *Policy {
	p.Default = a
	return p
}

// SetAction adds a rule: when a call of method at the given occurrence index
// (AnyIndex for any) throws an exception whose wire type name is errType,
// take the given action. This mirrors the paper's
// setAction(methodName, index, exception, status).
func (p *Policy) SetAction(errType, method string, index int, a Action) *Policy {
	p.Rules = append(p.Rules, Rule{ErrType: errType, Method: method, Index: index, Act: a})
	return p
}

// SetActionForError adds a rule matching an example error value's type at
// any method and index.
func (p *Policy) SetActionForError(sample error, a Action) *Policy {
	return p.SetAction(wire.TypeNameOf(sample), "", AnyIndex, a)
}

// actionFor picks the action for err thrown by the index-th occurrence of
// method. Specificity order: (type,method,index) > (type,method,any) >
// (type,any,any) > (any,method,index) > (any,method,any) > default.
func (p *Policy) actionFor(err error, method string, index int) Action {
	if p == nil {
		return ActionBreak
	}
	errType := wire.TypeNameOf(err)
	best := Action(0)
	bestScore := -1
	for _, r := range p.Rules {
		score := 0
		if r.ErrType != "" {
			if r.ErrType != errType {
				continue
			}
			score += 4
		}
		if r.Method != "" {
			if r.Method != method {
				continue
			}
			score += 2
		}
		if r.Index != AnyIndex {
			if r.Index != index {
				continue
			}
			score++
		}
		if score > bestScore {
			bestScore = score
			best = r.Act
		}
	}
	if bestScore >= 0 && best != 0 {
		return best
	}
	if p.Default != 0 {
		return p.Default
	}
	return ActionBreak
}

// maxAttempts returns the bounded repeat count.
func (p *Policy) maxAttempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

// maxRestarts returns the bounded restart count.
func (p *Policy) maxRestarts() int {
	if p == nil || p.MaxRestarts <= 0 {
		return DefaultMaxRestarts
	}
	return p.MaxRestarts
}
