package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/wire"
)

func silentLogf(string, ...any) {}

// --- test application: the paper's running example (files/directories) ------

type permissionError struct {
	File string
}

func (e *permissionError) Error() string { return "permission denied: " + e.File }

type fileNotFoundError struct {
	Name string
}

func (e *fileNotFoundError) Error() string { return "file not found: " + e.Name }

type file struct {
	rmi.RemoteBase
	dir    *directory
	name   string
	size   int
	date   time.Time
	locked bool
}

func (f *file) GetName() string { return f.name }

func (f *file) GetSize() (int, error) {
	if f.locked {
		return 0, &permissionError{File: f.name}
	}
	return f.size, nil
}

func (f *file) GetDate() time.Time { return f.date }

func (f *file) Delete() {
	f.dir.delete(f.name)
}

type directory struct {
	rmi.RemoteBase
	mu    sync.Mutex
	files []*file
}

func (d *directory) GetFile(name string) (*file, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		if f.name == name {
			return f, nil
		}
	}
	return nil, &fileNotFoundError{Name: name}
}

func (d *directory) AllFiles() []*file {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*file, len(d.files))
	copy(out, d.files)
	return out
}

func (d *directory) Names() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, len(d.files))
	for i, f := range d.files {
		names[i] = f.name
	}
	return names
}

func (d *directory) delete(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, f := range d.files {
		if f.name == name {
			d.files = append(d.files[:i], d.files[i+1:]...)
			return
		}
	}
}

// identity test service (paper §5.3 Remote Simulation shape).
type balancer struct {
	rmi.RemoteBase
	calls int
}

func (b *balancer) Balance() { b.calls++ }

type simulation struct {
	rmi.RemoteBase
	created *balancer
}

func (s *simulation) CreateBalancer() *balancer {
	s.created = &balancer{}
	return s.created
}

// PerformStep reports whether the balancer argument is the identical object
// CreateBalancer returned — BRMI must make this true (§4.4).
func (s *simulation) PerformStep(reps int, b any) bool {
	bb, ok := b.(*balancer)
	if !ok {
		return false
	}
	for i := 0; i < reps; i++ {
		bb.Balance()
	}
	return bb == s.created
}

// flaky fails its first n calls, for Repeat/Restart policies.
type flaky struct {
	rmi.RemoteBase
	mu       sync.Mutex
	failures int
	calls    int
}

func (f *flaky) Work() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failures {
		return 0, &permissionError{File: fmt.Sprintf("attempt-%d", f.calls)}
	}
	return f.calls, nil
}

func (f *flaky) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func init() {
	wire.MustRegisterError("coretest.Permission", &permissionError{})
	wire.MustRegisterError("coretest.FileNotFound", &fileNotFoundError{})
	rmi.RegisterImpl("coretest.File", &file{})
	rmi.RegisterImpl("coretest.Balancer", &balancer{})
}

// --- fixtures ---------------------------------------------------------------

type fixture struct {
	server *rmi.Peer
	client *rmi.Peer
	exec   *core.Executor
	dir    *directory
	dirRef wire.Ref
}

func baseDate(day int) time.Time {
	return time.Date(2009, 6, day, 0, 0, 0, 0, time.UTC)
}

func newFixture(t *testing.T, execOpts ...core.ExecOption) *fixture {
	t.Helper()
	network := netsim.New(netsim.Instant)
	t.Cleanup(func() { _ = network.Close() })
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	if err := server.Serve("server"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	exec, err := core.Install(server, execOpts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Stop)
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	t.Cleanup(func() { _ = client.Close() })

	dir := &directory{}
	for i, spec := range []struct {
		name   string
		size   int
		day    int
		locked bool
	}{
		{"index.html", 1024, 1, false},
		{"A.txt", 42, 2, false},
		{"B.txt", 77, 20, false},
		{"secret.bin", 512, 3, true},
	} {
		dir.files = append(dir.files, &file{dir: dir, name: spec.name, size: spec.size + i*0, date: baseDate(spec.day), locked: spec.locked})
	}
	dirRef, err := server.Export(dir, "coretest.Directory")
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{server: server, client: client, exec: exec, dir: dir, dirRef: dirRef}
}

// --- tests -------------------------------------------------------------------

// TestRunningExample reproduces the paper's §3.2 example: getFile, getName,
// getSize batched into one round trip.
func TestRunningExample(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	before := fx.client.CallCount()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	index := root.CallBatch("GetFile", "index.html")
	name := index.Call("GetName")
	size := index.Call("GetSize")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	rounds := fx.client.CallCount() - before
	if rounds != 1 {
		t.Fatalf("batch used %d round trips, want 1", rounds)
	}

	gotName, err := core.Typed[string](name).Get()
	if err != nil || gotName != "index.html" {
		t.Fatalf("name: %v %q", err, gotName)
	}
	gotSize, err := core.Typed[int](size).Get()
	if err != nil || gotSize != 1024 {
		t.Fatalf("size: %v %d", err, gotSize)
	}
}

func TestFutureBeforeFlush(t *testing.T) {
	fx := newFixture(t)
	//brmivet:ignore unflushed pre-flush ErrPending is the subject under test
	b := core.New(fx.client, fx.dirRef)
	name := b.Root().CallBatch("GetFile", "A.txt").Call("GetName")
	//brmivet:ignore futurederef asserts ErrPending before flush on purpose
	if _, err := name.Get(); !errors.Is(err, core.ErrPending) {
		t.Fatalf("got %v, want ErrPending", err)
	}
}

func TestExceptionOnFuture(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	secret := root.CallBatch("GetFile", "secret.bin")
	name := secret.Call("GetName")
	size := secret.Call("GetSize") // locked: throws permissionError
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := name.Get(); err != nil || v.(string) != "secret.bin" {
		t.Fatalf("name: %v %v", err, v)
	}
	_, err := size.Get()
	var pe *permissionError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want permissionError", err)
	}
}

// TestDependencyPropagation: when getFile throws, the dependent futures
// rethrow the getFile exception ("the get method of a future rethrows any
// exception on which the future's value depends", §3.3).
func TestDependencyPropagation(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	ghost := root.CallBatch("GetFile", "missing.txt")
	name := ghost.Call("GetName")
	size := ghost.Call("GetSize")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var fnf *fileNotFoundError
	if _, err := name.Get(); !errors.As(err, &fnf) {
		t.Fatalf("name: got %v, want fileNotFoundError", err)
	}
	if _, err := size.Get(); !errors.As(err, &fnf) {
		t.Fatalf("size: got %v, want fileNotFoundError", err)
	}
	if err := ghost.Ok(); !errors.As(err, &fnf) {
		t.Fatalf("ok: got %v, want fileNotFoundError", err)
	}
}

// TestAbortPolicySkipsRest: default policy aborts the batch on the first
// exception; later, unrelated calls are skipped and their futures rethrow
// the aborting error.
func TestAbortPolicySkipsRest(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	ghost := root.CallBatch("GetFile", "missing.txt") // fails
	_ = ghost
	other := root.CallBatch("GetFile", "A.txt") // unrelated but after the failure
	name := other.Call("GetName")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var fnf *fileNotFoundError
	if _, err := name.Get(); !errors.As(err, &fnf) {
		t.Fatalf("got %v, want the aborting fileNotFoundError", err)
	}
}

// TestContinuePolicy: execution continues past exceptions; independent
// calls succeed.
func TestContinuePolicy(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef, core.WithPolicy(core.ContinuePolicy()))
	root := b.Root()
	ghost := root.CallBatch("GetFile", "missing.txt") // fails
	gname := ghost.Call("GetName")                    // dependent: fails
	other := root.CallBatch("GetFile", "A.txt")       // independent: succeeds
	oname := other.Call("GetName")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var fnf *fileNotFoundError
	if _, err := gname.Get(); !errors.As(err, &fnf) {
		t.Fatalf("dependent: got %v, want fileNotFoundError", err)
	}
	if v, err := oname.Get(); err != nil || v.(string) != "A.txt" {
		t.Fatalf("independent: %v %v", err, v)
	}
}

// TestCustomPolicyBreak mirrors the paper's Bank case study (§5.1): break
// on a specific exception from a specific method, continue otherwise.
func TestCustomPolicyBreak(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	policy := core.CustomPolicy().
		SetDefaultAction(core.ActionContinue).
		SetAction("coretest.FileNotFound", "GetFile", 0, core.ActionBreak)
	b := core.New(fx.client, fx.dirRef, core.WithPolicy(policy))
	root := b.Root()
	ghost := root.CallBatch("GetFile", "missing.txt") // rule: break
	_ = ghost
	after := root.CallBatch("GetFile", "A.txt")
	aname := after.Call("GetName")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var fnf *fileNotFoundError
	if _, err := aname.Get(); !errors.As(err, &fnf) {
		t.Fatalf("got %v, want batch broken by fileNotFoundError", err)
	}
}

func TestCustomPolicyRuleSpecificity(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	// Default break, but continue specifically past GetSize permission
	// errors.
	policy := core.CustomPolicy().
		SetDefaultAction(core.ActionBreak).
		SetAction("coretest.Permission", "GetSize", core.AnyIndex, core.ActionContinue)
	b := core.New(fx.client, fx.dirRef, core.WithPolicy(policy))
	root := b.Root()
	secret := root.CallBatch("GetFile", "secret.bin")
	size := secret.Call("GetSize") // permission error: rule says continue
	other := root.CallBatch("GetFile", "A.txt")
	oname := other.Call("GetName")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var pe *permissionError
	if _, err := size.Get(); !errors.As(err, &pe) {
		t.Fatalf("size: got %v, want permissionError", err)
	}
	if v, err := oname.Get(); err != nil || v.(string) != "A.txt" {
		t.Fatalf("after continue: %v %v", err, v)
	}
}

func TestRepeatPolicy(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	fl := &flaky{failures: 2}
	ref, err := fx.server.Export(fl, "coretest.Flaky")
	if err != nil {
		t.Fatal(err)
	}
	policy := core.CustomPolicy().SetDefaultAction(core.ActionRepeat)
	policy.MaxAttempts = 5
	b := core.New(fx.client, ref, core.WithPolicy(policy))
	root := b.Root()
	v := root.Call("Work")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := core.Typed[int](v).Get()
	if err != nil {
		t.Fatalf("repeat did not recover: %v", err)
	}
	if got != 3 {
		t.Fatalf("got %d, want success on attempt 3", got)
	}
}

func TestRepeatPolicyExhausted(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	fl := &flaky{failures: 100}
	ref, err := fx.server.Export(fl, "coretest.Flaky")
	if err != nil {
		t.Fatal(err)
	}
	policy := core.CustomPolicy().SetDefaultAction(core.ActionRepeat)
	policy.MaxAttempts = 3
	b := core.New(fx.client, ref, core.WithPolicy(policy))
	v := b.Root().Call("Work")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var pe *permissionError
	if _, err := v.Get(); !errors.As(err, &pe) {
		t.Fatalf("got %v, want permissionError after exhausted retries", err)
	}
	if fl.Calls() != 3 {
		t.Fatalf("server saw %d attempts, want 3", fl.Calls())
	}
}

func TestRestartPolicy(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	fl := &flaky{failures: 1} // first execution of the batch fails, rerun succeeds
	ref, err := fx.server.Export(fl, "coretest.Flaky")
	if err != nil {
		t.Fatal(err)
	}
	policy := core.CustomPolicy().SetDefaultAction(core.ActionRestart)
	b := core.New(fx.client, ref, core.WithPolicy(policy))
	v := b.Root().Call("Work")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := core.Typed[int](v).Get()
	if err != nil || got != 2 {
		t.Fatalf("restart: %v %d, want value 2 (second run)", err, got)
	}
}

// TestCursor reproduces §3.4: name and size of every file in one batch.
func TestCursor(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef, core.WithPolicy(core.ContinuePolicy()))
	root := b.Root()
	cursor := root.CallCursor("AllFiles")
	name := cursor.Call("GetName")
	date := cursor.Call("GetDate")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	n, err := cursor.Len()
	if err != nil || n != 4 {
		t.Fatalf("len: %v %d", err, n)
	}
	var names []string
	var dates []time.Time
	for cursor.Next() {
		v, err := core.Typed[string](name).Get()
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, v)
		d, err := core.Typed[time.Time](date).Get()
		if err != nil {
			t.Fatal(err)
		}
		dates = append(dates, d)
	}
	want := []string{"index.html", "A.txt", "B.txt", "secret.bin"}
	if len(names) != 4 {
		t.Fatalf("iterated %d elements", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if !dates[0].Equal(baseDate(1)) || !dates[2].Equal(baseDate(20)) {
		t.Fatalf("dates = %v", dates)
	}
	// After exhaustion, futures report ErrCursorExhausted.
	if _, err := name.Get(); !errors.Is(err, core.ErrCursorExhausted) {
		t.Fatalf("after exhaustion: %v", err)
	}
	// Reset rewinds.
	cursor.Reset()
	if !cursor.Next() {
		t.Fatal("Next after Reset failed")
	}
	if v, _ := core.Typed[string](name).Get(); v != "index.html" {
		t.Fatalf("after reset: %q", v)
	}
}

func TestCursorBeforeNext(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	cursor := b.Root().CallCursor("AllFiles")
	name := cursor.Call("GetName")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := name.Get(); !errors.Is(err, core.ErrCursorNotStarted) {
		t.Fatalf("got %v, want ErrCursorNotStarted", err)
	}
}

func TestCursorEmptySlice(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	fx.dir.files = nil
	b := core.New(fx.client, fx.dirRef)
	cursor := b.Root().CallCursor("AllFiles")
	name := cursor.Call("GetName")
	_ = name
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if n, err := cursor.Len(); err != nil || n != 0 {
		t.Fatalf("len: %v %d", err, n)
	}
	if cursor.Next() {
		t.Fatal("Next on empty cursor returned true")
	}
}

// TestCursorPerElementError: the paper's motivating case for ContinuePolicy
// — one locked file must not spoil the listing (§3.3, §5.1).
func TestCursorPerElementError(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef, core.WithPolicy(core.ContinuePolicy()))
	cursor := b.Root().CallCursor("AllFiles")
	name := cursor.Call("GetName")
	size := cursor.Call("GetSize")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	okCount, errCount := 0, 0
	for cursor.Next() {
		if _, err := name.Get(); err != nil {
			t.Fatalf("name should never fail: %v", err)
		}
		if _, err := size.Get(); err != nil {
			var pe *permissionError
			if !errors.As(err, &pe) {
				t.Fatalf("got %v, want permissionError", err)
			}
			errCount++
		} else {
			okCount++
		}
	}
	if okCount != 3 || errCount != 1 {
		t.Fatalf("ok=%d err=%d, want 3/1", okCount, errCount)
	}
}

func TestCursorInterleavingRejected(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	cursor := root.CallCursor("AllFiles")
	_ = cursor.Call("GetName")
	_ = root.Call("Names")     // interrupts the cursor's run
	_ = cursor.Call("GetSize") // violation: cursor ops must be contiguous
	err := root.Flush(ctx)
	if !errors.Is(err, core.ErrCursorInterleaved) {
		t.Fatalf("got %v, want ErrCursorInterleaved", err)
	}
}

func TestNestedCursorRejected(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	cursor := b.Root().CallCursor("AllFiles")
	_ = cursor.CallCursor("AllFiles")
	if err := b.Flush(ctx); !errors.Is(err, core.ErrNestedCursor) {
		t.Fatalf("got %v, want ErrNestedCursor", err)
	}
}

// TestChainedBatch reproduces §3.5: fetch a date, decide client-side, then
// delete in a chained batch that reuses the server-side object.
func TestChainedBatch(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	cutoff := baseDate(10)

	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	mFile := root.CallBatch("GetFile", "A.txt")
	date := mFile.Call("GetDate")
	if err := root.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	d, err := core.Typed[time.Time](date).Get()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Before(cutoff) {
		t.Fatalf("A.txt date %v not before cutoff", d)
	}
	name := mFile.Call("GetName")
	_ = mFile.Call("Delete")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := name.Get(); err != nil || v.(string) != "A.txt" {
		t.Fatalf("name: %v %v", err, v)
	}
	for _, n := range fx.dir.Names() {
		if n == "A.txt" {
			t.Fatal("A.txt not deleted")
		}
	}
}

// TestChainedCursor reproduces the paper's delete-files-older-than example
// (§3.5): two batches total.
func TestChainedCursor(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	cutoff := baseDate(10)

	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	cursor := root.CallCursor("AllFiles")
	date := cursor.Call("GetDate")
	if err := root.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	for cursor.Next() {
		d, err := core.Typed[time.Time](date).Get()
		if err != nil {
			t.Fatal(err)
		}
		if d.Before(cutoff) {
			_ = cursor.Call("Delete")
		}
	}
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	names := fx.dir.Names()
	if len(names) != 1 || names[0] != "B.txt" {
		t.Fatalf("remaining files %v, want [B.txt] (only one newer than cutoff)", names)
	}
}

// TestIdentityPreserved reproduces §4.4/§5.3: the balancer passed back into
// PerformStep is the identical server object, so its calls are local.
func TestIdentityPreserved(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	sim := &simulation{}
	ref, err := fx.server.Export(sim, "coretest.Simulation")
	if err != nil {
		t.Fatal(err)
	}
	b := core.New(fx.client, ref)
	root := b.Root()
	bal := root.CallBatch("CreateBalancer")
	same := root.Call("PerformStep", 10, bal)
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := core.Typed[bool](same).Get()
	if err != nil {
		t.Fatal(err)
	}
	if !v {
		t.Fatal("identity lost: PerformStep did not receive the created balancer")
	}
	if sim.created.calls != 10 {
		t.Fatalf("balance called %d times, want 10", sim.created.calls)
	}
}

func TestForeignProxyRejected(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b1 := core.New(fx.client, fx.dirRef)
	b2 := core.New(fx.client, fx.dirRef)
	f1 := b1.Root().CallBatch("GetFile", "A.txt")
	_ = b2.Root().Call("PerformStep", 1, f1) // proxy from b1 used in b2
	if err := b2.Flush(ctx); !errors.Is(err, core.ErrForeignProxy) {
		t.Fatalf("got %v, want ErrForeignProxy", err)
	}
}

func TestBatchClosedAfterFlush(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	_ = root.Call("Names")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := root.Flush(ctx); !errors.Is(err, core.ErrBatchClosed) {
		t.Fatalf("second flush: got %v, want ErrBatchClosed", err)
	}
	f := root.Call("Names")
	if err := b.Flush(ctx); !errors.Is(err, core.ErrBatchClosed) {
		t.Fatalf("flush after closed recording: got %v", err)
	}
	if _, err := f.Get(); err == nil {
		t.Fatal("future recorded after close returned a value")
	}
}

func TestSessionLifecycle(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	_ = root.Call("Names")
	if err := root.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	if b.Session() == 0 {
		t.Fatal("no session after FlushAndContinue")
	}
	if fx.exec.NumSessions() != 1 {
		t.Fatalf("server sessions = %d, want 1", fx.exec.NumSessions())
	}
	_ = root.Call("Names")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if b.Session() != 0 {
		t.Fatal("session survived Flush")
	}
	if fx.exec.NumSessions() != 0 {
		t.Fatalf("server sessions = %d, want 0", fx.exec.NumSessions())
	}
}

func TestSessionExpiry(t *testing.T) {
	fx := newFixture(t, core.WithSessionTTL(30*time.Millisecond))
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	f := root.CallBatch("GetFile", "A.txt")
	if err := root.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // several sweep periods
	_ = f.Call("GetName")
	err := root.Flush(ctx)
	var se *core.SessionExpiredError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want SessionExpiredError", err)
	}
}

func TestNoBatchService(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	if err := server.Serve("bare"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	defer client.Close()
	dir := &directory{}
	ref, err := server.Export(dir, "coretest.Directory")
	if err != nil {
		t.Fatal(err)
	}
	b := core.New(client, ref)
	_ = b.Root().Call("Names")
	if err := b.Flush(context.Background()); !errors.Is(err, core.ErrNoBatchService) {
		t.Fatalf("got %v, want ErrNoBatchService", err)
	}
}

func TestEmptyFlush(t *testing.T) {
	fx := newFixture(t)
	if err := core.New(fx.client, fx.dirRef).Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestKindMismatchValueForRemote(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	f := b.Root().Call("GetFile", "A.txt") // wrong: returns a remote object
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := f.Get()
	var km *core.KindMismatchError
	if !errors.As(err, &km) {
		t.Fatalf("got %v, want KindMismatchError", err)
	}
}

func TestKindMismatchRemoteForValue(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	p := b.Root().CallBatch("Names") // wrong: returns a value
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	err := p.Ok()
	var km *core.KindMismatchError
	if !errors.As(err, &km) {
		t.Fatalf("got %v, want KindMismatchError", err)
	}
}

func TestVoidFutureErrChecking(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	f := b.Root().CallBatch("GetFile", "A.txt")
	del := f.Call("Delete") // void method: future exists for error checking
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := del.Err(); err != nil {
		t.Fatalf("void future err: %v", err)
	}
}

func TestConcurrentIndependentBatches(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := core.New(fx.client, fx.dirRef)
			f := b.Root().CallBatch("GetFile", "index.html")
			name := f.Call("GetName")
			if err := b.Flush(ctx); err != nil {
				errs <- err
				return
			}
			if v, err := name.Get(); err != nil || v.(string) != "index.html" {
				errs <- fmt.Errorf("got %v %v", err, v)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTypedFutureConversions(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	f := b.Root().CallBatch("GetFile", "A.txt")
	size := f.Call("GetSize")
	name := f.Call("GetName")
	date := f.Call("GetDate")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := core.Typed[int64](size).Get(); err != nil || v != 42 {
		t.Fatalf("int64: %v %v", err, v)
	}
	if v, err := core.Typed[float64](size).Get(); err != nil || v != 42 {
		t.Fatalf("float64: %v %v", err, v)
	}
	if v, err := core.Typed[string](name).Get(); err != nil || v != "A.txt" {
		t.Fatalf("string: %v %v", err, v)
	}
	if v, err := core.Typed[time.Time](date).Get(); err != nil || !v.Equal(baseDate(2)) {
		t.Fatalf("time: %v %v", err, v)
	}
	if _, err := core.Typed[string](size).Get(); err == nil {
		t.Fatal("int-to-string conversion succeeded")
	}
}

// TestRoundTripComparison quantifies the headline claim: the paper's file
// listing needs 1 + 4n RMI calls but exactly one BRMI call (§5.1).
func TestRoundTripComparison(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	// Plain RMI: listFiles + per-file getName/getSize/getDate.
	before := fx.client.CallCount()
	res, err := fx.client.Call(ctx, fx.dirRef, "AllFiles")
	if err != nil {
		t.Fatal(err)
	}
	files := res[0].([]any)
	for _, f := range files {
		stub := f.(*rmi.Stub)
		if _, err := stub.InvokeOne(ctx, "GetName"); err != nil {
			t.Fatal(err)
		}
		if _, err := stub.InvokeOne(ctx, "GetDate"); err != nil {
			t.Fatal(err)
		}
	}
	rmiCalls := fx.client.CallCount() - before
	wantRMI := uint64(1 + 2*len(files))
	if rmiCalls != wantRMI {
		t.Fatalf("RMI used %d calls, want %d", rmiCalls, wantRMI)
	}

	// BRMI: one flush.
	before = fx.client.CallCount()
	b := core.New(fx.client, fx.dirRef)
	cursor := b.Root().CallCursor("AllFiles")
	_ = cursor.Call("GetName")
	_ = cursor.Call("GetDate")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fx.client.CallCount() - before; got != 1 {
		t.Fatalf("BRMI used %d calls, want 1", got)
	}
}
