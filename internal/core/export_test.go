package core

// PolicyActionForTest exposes the policy matcher to the external test
// package for property testing.
func PolicyActionForTest(p *Policy, err error, method string, index int) Action {
	return p.actionFor(err, method, index)
}
