package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// jobQueue exposes slices of non-remote values and flaky per-item work,
// for cursor and policy edge cases beyond the file-server domain.
type jobQueue struct {
	rmi.RemoteBase
	names  []string
	failAt int // index of the job whose Run fails; -1 for none
	jobs   []*job
}

type job struct {
	rmi.RemoteBase
	id   int
	fail bool
	runs int
}

func (j *job) ID() int { return j.id }

func (j *job) Run() (int, error) {
	j.runs++
	if j.fail {
		return 0, &permissionError{File: fmt.Sprintf("job-%d", j.id)}
	}
	return j.id * 10, nil
}

func newJobQueue(n, failAt int) *jobQueue {
	q := &jobQueue{failAt: failAt}
	for i := 0; i < n; i++ {
		q.names = append(q.names, fmt.Sprintf("job-%d", i))
		q.jobs = append(q.jobs, &job{id: i, fail: i == failAt})
	}
	return q
}

func (q *jobQueue) Names() []string { return q.names }
func (q *jobQueue) Jobs() []*job    { return q.jobs }

// TestCursorOverValueSlice: cursors also work over slices of plain values
// (the paper extends cursors to any collection); with no recorded
// operations the cursor still reports the element count.
func TestCursorOverValueSlice(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	q := newJobQueue(5, -1)
	ref, err := fx.server.Export(q, "coretest.JobQueue")
	if err != nil {
		t.Fatal(err)
	}
	b := core.New(fx.client, ref)
	cursor := b.Root().CallCursor("Names")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	n, err := cursor.Len()
	if err != nil || n != 5 {
		t.Fatalf("len: %v %d", err, n)
	}
	steps := 0
	for cursor.Next() {
		steps++
	}
	if steps != 5 {
		t.Fatalf("iterated %d", steps)
	}
}

// TestCursorRepeatPolicyPerElement: under a Repeat policy, successful
// element operations run exactly once — retries never leak to elements
// that did not fail.
func TestCursorRepeatPolicyPerElement(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	q := newJobQueue(3, -1) // no failing job
	ref, err := fx.server.Export(q, "coretest.JobQueue")
	if err != nil {
		t.Fatal(err)
	}
	policy := core.CustomPolicy().SetDefaultAction(core.ActionRepeat)
	policy.MaxAttempts = 2
	b := core.New(fx.client, ref, core.WithPolicy(policy))
	cursor := b.Root().CallCursor("Jobs")
	result := cursor.Call("Run")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for cursor.Next() {
		if _, err := result.Get(); err == nil {
			okCount++
		}
	}
	if okCount != 3 {
		t.Fatalf("ok=%d, want all 3 (no element permanently fails)", okCount)
	}
	// Every job ran exactly once: no spurious retries of successes.
	for i, j := range q.jobs {
		if j.runs != 1 {
			t.Fatalf("job %d ran %d times", i, j.runs)
		}
	}
}

// TestCursorRepeatExhaustsThenRecords: a deterministic per-element failure
// under Repeat is retried MaxAttempts times, then recorded; the rest of the
// cursor still runs.
func TestCursorRepeatExhaustsThenRecords(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	q := newJobQueue(3, 1)
	ref, err := fx.server.Export(q, "coretest.JobQueue")
	if err != nil {
		t.Fatal(err)
	}
	policy := core.CustomPolicy().SetDefaultAction(core.ActionRepeat)
	policy.MaxAttempts = 3
	b := core.New(fx.client, ref, core.WithPolicy(policy))
	cursor := b.Root().CallCursor("Jobs")
	result := cursor.Call("Run")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var errCount, okCount int
	for cursor.Next() {
		if _, err := result.Get(); err != nil {
			var pe *permissionError
			if !errors.As(err, &pe) {
				t.Fatalf("got %v", err)
			}
			errCount++
		} else {
			okCount++
		}
	}
	if okCount != 2 || errCount != 1 {
		t.Fatalf("ok=%d err=%d", okCount, errCount)
	}
	if q.jobs[1].runs != 3 {
		t.Fatalf("failing job retried %d times, want 3", q.jobs[1].runs)
	}
}

// TestCursorAbortMarksTail: under the default abort policy, a failing
// element poisons the remaining elements' futures with the aborting error.
func TestCursorAbortMarksTail(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	q := newJobQueue(4, 1)
	ref, err := fx.server.Export(q, "coretest.JobQueue")
	if err != nil {
		t.Fatal(err)
	}
	b := core.New(fx.client, ref) // AbortPolicy
	cursor := b.Root().CallCursor("Jobs")
	result := cursor.Call("Run")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var states []string
	for cursor.Next() {
		if _, err := result.Get(); err != nil {
			states = append(states, "err")
		} else {
			states = append(states, "ok")
		}
	}
	want := []string{"ok", "err", "err", "err"}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("states %v, want %v", states, want)
	}
	// Elements after the failure never executed.
	if q.jobs[2].runs != 0 || q.jobs[3].runs != 0 {
		t.Fatalf("tail jobs ran: %d %d", q.jobs[2].runs, q.jobs[3].runs)
	}
}

// TestRestartBoundedOnDeterministicFailure: a batch that always fails under
// ActionRestart gives up after MaxRestarts instead of looping forever.
func TestRestartBoundedOnDeterministicFailure(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	fl := &flaky{failures: 1 << 30}
	ref, err := fx.server.Export(fl, "coretest.Flaky")
	if err != nil {
		t.Fatal(err)
	}
	policy := core.CustomPolicy().SetDefaultAction(core.ActionRestart)
	policy.MaxRestarts = 2
	b := core.New(fx.client, ref, core.WithPolicy(policy))
	v := b.Root().Call("Work")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Get(); err == nil {
		t.Fatal("deterministic failure succeeded")
	}
	// initial run + 2 restarts = 3 executions
	if got := fl.Calls(); got != 3 {
		t.Fatalf("batch executed %d times, want 3", got)
	}
}

// TestPolicyRuleSpecificityOrdering verifies the most-specific-rule-wins
// contract of Policy.SetAction.
func TestPolicyRuleSpecificityOrdering(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	// Generic rule: continue on permissionError anywhere. Specific rule:
	// break on permissionError from GetSize occurrence 0.
	policy := core.CustomPolicy().
		SetDefaultAction(core.ActionContinue).
		SetActionForError(&permissionError{}, core.ActionContinue).
		SetAction("coretest.Permission", "GetSize", 0, core.ActionBreak)
	b := core.New(fx.client, fx.dirRef, core.WithPolicy(policy))
	root := b.Root()
	secret := root.CallBatch("GetFile", "secret.bin")
	_ = secret.Call("GetSize") // occurrence 0: breaks
	after := root.CallBatch("GetFile", "A.txt")
	aname := after.Call("GetName")
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var pe *permissionError
	if _, err := aname.Get(); !errors.As(err, &pe) {
		t.Fatalf("specific Break rule not applied: %v", err)
	}
}

// TestChainedBatchProxyArgAcrossFlush: a proxy created in batch 1 is a
// valid argument in a chained batch 2 (same chain).
func TestChainedBatchProxyArgAcrossFlush(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	sim := &simulation{}
	ref, err := fx.server.Export(sim, "coretest.Simulation")
	if err != nil {
		t.Fatal(err)
	}
	b := core.New(fx.client, ref)
	root := b.Root()
	bal := root.CallBatch("CreateBalancer")
	if err := root.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	same := root.Call("PerformStep", 3, bal)
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := core.Typed[bool](same).Get()
	if err != nil || !v {
		t.Fatalf("identity across chained flush: %v %v", err, v)
	}
}

// TestFlushFailurePoisonsFutures: a transport-level flush failure surfaces
// through every pending future as the same BatchError.
func TestFlushFailurePoisonsFutures(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	defer client.Close()
	// Ref to a server that does not exist.
	b := core.New(client, wire.Ref{Endpoint: "ghost-endpoint", ObjID: 16, Iface: "X"})
	f := b.Root().Call("Anything")
	err := b.Flush(context.Background())
	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("flush: got %v, want BatchError", err)
	}
	if _, gerr := f.Get(); !errors.As(gerr, &be) {
		t.Fatalf("future: got %v, want the BatchError", gerr)
	}
	// The batch is closed afterwards.
	if err := b.Flush(context.Background()); !errors.Is(err, core.ErrBatchClosed) {
		t.Fatalf("reflush: got %v", err)
	}
}

// TestCursorKindMismatchNonSlice: CallCursor on a method returning a
// non-slice yields a KindMismatchError on the cursor.
func TestCursorKindMismatchNonSlice(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	cursor := b.Root().CallCursor("GetFile", "A.txt")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := cursor.Len()
	var km *core.KindMismatchError
	if !errors.As(err, &km) {
		t.Fatalf("got %v, want KindMismatchError", err)
	}
	if cursor.Next() {
		t.Fatal("Next on failed cursor returned true")
	}
}

// TestSessionTTLRefreshedByChainedFlush: every chained flush pushes the
// session expiry out, so long chains survive as long as they keep talking.
func TestSessionTTLRefreshedByChainedFlush(t *testing.T) {
	fx := newFixture(t, core.WithSessionTTL(80*time.Millisecond))
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	f := root.CallBatch("GetFile", "A.txt")
	if err := root.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	// Three rounds, each within the TTL but cumulatively beyond it.
	for i := 0; i < 3; i++ {
		time.Sleep(50 * time.Millisecond)
		_ = f.Call("GetName")
		if err := root.FlushAndContinue(ctx); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if err := root.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRootOkAlwaysNil: the root proxy has no creating call; Ok is nil even
// before flush.
func TestRootOkAlwaysNil(t *testing.T) {
	fx := newFixture(t)
	//brmivet:ignore unflushed pre-flush Ok behavior is the subject under test
	b := core.New(fx.client, fx.dirRef)
	if err := b.Root().Ok(); err != nil {
		t.Fatalf("root Ok = %v", err)
	}
}

// TestProxyOkPendingBeforeFlush: non-root proxies report ErrPending until
// flushed.
func TestProxyOkPendingBeforeFlush(t *testing.T) {
	fx := newFixture(t)
	//brmivet:ignore unflushed pre-flush Ok behavior is the subject under test
	b := core.New(fx.client, fx.dirRef)
	p := b.Root().CallBatch("GetFile", "A.txt")
	if err := p.Ok(); !errors.Is(err, core.ErrPending) {
		t.Fatalf("got %v, want ErrPending", err)
	}
}

// TestPendingCallsCounter tracks the recording queue length.
func TestPendingCallsCounter(t *testing.T) {
	fx := newFixture(t)
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	if b.PendingCalls() != 0 {
		t.Fatal("fresh batch has pending calls")
	}
	_ = root.Call("Names")
	_ = root.CallBatch("GetFile", "A.txt")
	if got := b.PendingCalls(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := b.PendingCalls(); got != 0 {
		t.Fatalf("pending after flush = %d", got)
	}
}
