package core

import (
	"context"

	"repro/internal/wire"
)

// Proxy is a batch object: the client-side recording stub for one remote
// object involved in a batch (§3.2, §4.1). Method calls on a proxy are
// recorded, not sent; futures and further proxies are returned immediately.
//
// Proxies are NOT RMI stubs: creating one involves no network traffic and no
// distributed GC, which is one of the paper's measured advantages.
type Proxy struct {
	b *Batch
	// seq identifies the call that created this proxy (RootTarget for the
	// batch root). It is how the proxy is named in the wire protocol.
	seq int64
	// cursor is the owning cursor when this proxy was derived from cursor
	// operations; nil otherwise.
	cursor *Cursor
	// base is the server-assigned id of this proxy's per-element results
	// (cursor-owned proxies only), set at flush.
	base int64
	// failed is the error of the creating call (or its dependency) after
	// flush; Ok reports it.
	failed error
	// settled is true once flush processed the creating call.
	settled bool
	// root is true for proxies returned by Batch.Root / Batch.AddRoot: the
	// only proxies whose calls have a cache identity (a stable wire ref).
	root bool
	// chainRoot is the exported object this proxy's call chain descends
	// from; it keys cache invalidation for writes recorded through it.
	chainRoot wire.Ref
	// exportRef is the pinned exported reference of this proxy's result,
	// set at flush when the call was recorded with CallBatchExport.
	exportRef wire.Ref
}

// Batch returns the batch this proxy records into.
func (p *Proxy) Batch() *Batch { return p.b }

// Call records a method invocation whose result is a value, returning its
// future. Use CallBatch for methods returning remote objects and CallCursor
// for methods returning slices of remote objects.
func (p *Proxy) Call(method string, args ...any) *Future {
	return p.b.recordValue(p, method, args, false)
}

// CallRO records a method invocation declared //brmi:readonly. When the
// batch carries a lease cache (core.WithCache) and the call is cacheable —
// root target, plain marshalable arguments — a cache hit settles the future
// locally without recording a wire call, and a miss fills the cache when
// the result lands. On an uncached batch (or an uncacheable call shape) it
// behaves exactly like Call. Generated batch stubs emit it for annotated
// methods; the declaration is the caller's promise of idempotence.
func (p *Proxy) CallRO(method string, args ...any) *Future {
	return p.b.recordValue(p, method, args, true)
}

// CallBatch records a method invocation whose result is a remote object.
// The result stays on the server (§4.2: "normal RMI proxies are never
// returned to the client"); the returned proxy records further calls on it.
func (p *Proxy) CallBatch(method string, args ...any) *Proxy {
	return p.b.recordRemote(p, method, false, args)
}

// CallBatchExport records a method invocation whose result is a remote
// object, like CallBatch, and additionally asks the server to pin the
// result as a fresh exported reference returned with the flush. The ref is
// readable via ExportedRef afterwards and is valid outside the batch: any
// peer can address the result directly, which is how the cluster layer
// forwards one server's result into another server's sub-batch (true
// dataflow forwarding instead of round-tripping the value).
//
// The export is lease-backed (internal/dgc): the server's marshal-grace
// lease keeps it alive for one lease period; callers that hold the ref
// longer must take their own lease (rmi.Peer.HoldRef) before the grace
// expires.
func (p *Proxy) CallBatchExport(method string, args ...any) *Proxy {
	return p.b.recordRemote(p, method, true, args)
}

// ExportedRef returns the pinned exported reference of this proxy's result.
// It is available after flush for calls recorded with CallBatchExport;
// proxies from plain CallBatch report ErrNotExported, and a failed call (or
// failed dependency) rethrows its error.
func (p *Proxy) ExportedRef() (wire.Ref, error) {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	if p.b.failure != nil {
		return wire.Ref{}, p.b.failure
	}
	if !p.settled {
		return wire.Ref{}, ErrPending
	}
	if p.failed != nil {
		return wire.Ref{}, p.failed
	}
	if p.exportRef.IsZero() {
		return wire.Ref{}, ErrNotExported
	}
	return p.exportRef, nil
}

// CallCursor records a method invocation whose result is a slice. The
// returned cursor applies subsequently recorded operations to every element
// (§3.4) and iterates the results after flush.
func (p *Proxy) CallCursor(method string, args ...any) *Cursor {
	return p.b.recordCursor(p, method, args)
}

// Ok rethrows any exception on which this batch object depends, mirroring
// the paper's Batch.ok method (§3.3). Before flush it returns ErrPending.
func (p *Proxy) Ok() error {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	if p.b.failure != nil {
		return p.b.failure
	}
	if !p.settled && p.seq != RootTarget {
		return ErrPending
	}
	return p.failed
}

// Flush executes the batch and closes the chain (§3.2). Equivalent to the
// paper's flush() on the root batch interface.
func (p *Proxy) Flush(ctx context.Context) error { return p.b.Flush(ctx) }

// FlushAndContinue executes the recorded calls and keeps the server context
// alive so a chained batch can reference earlier results (§3.5).
func (p *Proxy) FlushAndContinue(ctx context.Context) error { return p.b.FlushAndContinue(ctx) }

// currentSeq returns the id this proxy is addressed by when recording a
// call right now. For proxies created inside a cursor that has already been
// flushed, that is the server-assigned id of the element at the cursor's
// current position ("after that batch is flushed, the cursor represents
// individual items from the array", §3.5).
func (p *Proxy) currentSeq() (int64, error) {
	if p.cursor == nil || !p.cursor.flushed {
		return p.seq, nil
	}
	pos := p.cursor.pos
	switch {
	case pos < 0:
		return 0, ErrCursorNotStarted
	case pos >= int(p.cursor.count):
		return 0, ErrCursorExhausted
	}
	return p.base + int64(pos), nil
}

// recordingOwner returns the cursor whose sub-batch a call on this proxy
// belongs to: the owning cursor while it is still recording (not flushed).
func (p *Proxy) recordingOwner() *Cursor {
	if p.cursor != nil && !p.cursor.flushed {
		return p.cursor
	}
	return nil
}

// Cursor is a batch object standing for every element of a slice returned
// within a batch (§3.4). Before flush, recorded operations apply to all
// elements; after flush it iterates: Next advances to the following element
// and re-points all futures created from the cursor.
type Cursor struct {
	Proxy

	// flushed is true once the creating batch executed.
	flushed bool
	// runClosed marks the end of this cursor's contiguous recording run:
	// once another call interrupts it, further recording on the cursor is
	// an ErrCursorInterleaved violation (§4.1).
	runClosed bool
	// count is the number of elements, known after flush.
	count int64
	// pos is the iteration position (-1 before the first Next).
	pos int
}

// Next advances the cursor to the next element, returning false when the
// elements are exhausted. Futures created from this cursor then read the
// values of the current element.
func (c *Cursor) Next() bool {
	c.b.mu.Lock()
	defer c.b.mu.Unlock()
	if !c.flushed || c.failed != nil {
		return false
	}
	if c.pos+1 >= int(c.count) {
		c.pos = int(c.count) // exhausted; futures report ErrCursorExhausted
		return false
	}
	c.pos++
	return true
}

// Len returns the element count, or an error before flush / after a failed
// creating call.
func (c *Cursor) Len() (int, error) {
	c.b.mu.Lock()
	defer c.b.mu.Unlock()
	if c.b.failure != nil {
		return 0, c.b.failure
	}
	if !c.flushed {
		return 0, ErrPending
	}
	if c.failed != nil {
		return 0, c.failed
	}
	return int(c.count), nil
}

// Reset rewinds the cursor to before the first element so the results can
// be iterated again.
func (c *Cursor) Reset() {
	c.b.mu.Lock()
	defer c.b.mu.Unlock()
	if c.flushed {
		c.pos = -1
	}
}
