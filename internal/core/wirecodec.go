package core

import (
	"repro/internal/wire"
)

// wirecodec.go: compiled wire codecs (wire.RegisterCompiled) for the BRMI
// protocol messages. Every flush encodes and decodes one invocationData +
// batchArg per recorded call and one callResult per reply, so these five
// types ARE the marshalling hot path; the hand codecs below replace the
// per-field reflection plan while emitting byte-identical wire forms.
// Trailing zero fields are omitted exactly like the generic encoder; a
// decoder fills absent fields with their zero values and skips surplus
// fields from a newer sender.

func encBatchArg(x wire.Enc, a *batchArg) error {
	n := 3
	if a.Seq == 0 {
		n = 2
		if !a.IsRef {
			n = 1
			if a.Val == nil {
				n = 0
			}
		}
	}
	x.BeginStruct("brmi.arg", n)
	if n > 0 {
		if err := x.Value(a.Val); err != nil {
			return err
		}
	}
	if n > 1 {
		x.Bool(a.IsRef)
	}
	if n > 2 {
		x.Int(a.Seq)
	}
	return nil
}

func decBatchArg(x wire.Dec, a *batchArg, n int) error {
	var err error
	if n > 0 {
		if a.Val, err = x.Value(); err != nil {
			return err
		}
	}
	if n > 1 {
		if a.IsRef, err = x.Bool(); err != nil {
			return err
		}
	}
	if n > 2 {
		if a.Seq, err = x.Int(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 3)
}

func encArgSlice(x wire.Enc, args []batchArg) error {
	if args == nil {
		x.Nil()
		return nil
	}
	x.Slice(len(args))
	for i := range args {
		if err := encBatchArg(x, &args[i]); err != nil {
			return err
		}
	}
	return nil
}

func decArgSlice(x wire.Dec) ([]batchArg, error) {
	n, err := x.SliceLen()
	if err != nil || n < 0 {
		return nil, err
	}
	out := make([]batchArg, n)
	for i := range out {
		fn, err := x.StructFields("brmi.arg")
		if err != nil {
			return nil, err
		}
		if fn < 0 {
			continue
		}
		if err := decBatchArg(x, &out[i], fn); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func encInvocation(x wire.Enc, inv *invocationData) error {
	n := 7
	if !inv.Export {
		n = 6
		if inv.CursorOwner == 0 {
			n = 5
			if inv.Args == nil {
				n = 4 // Kind is always 1..3, the scan stops here
			}
		}
	}
	x.BeginStruct("brmi.inv", n)
	x.Int(inv.Seq)
	x.Int(inv.Target)
	x.Str(inv.Method)
	x.Int(inv.Kind)
	if n > 4 {
		if err := encArgSlice(x, inv.Args); err != nil {
			return err
		}
	}
	if n > 5 {
		x.Int(inv.CursorOwner)
	}
	if n > 6 {
		x.Bool(inv.Export)
	}
	return nil
}

func decInvocation(x wire.Dec, inv *invocationData, n int) error {
	var err error
	if n > 0 {
		if inv.Seq, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 1 {
		if inv.Target, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 2 {
		if inv.Method, err = x.Str(); err != nil {
			return err
		}
	}
	if n > 3 {
		if inv.Kind, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 4 {
		if inv.Args, err = decArgSlice(x); err != nil {
			return err
		}
	}
	if n > 5 {
		if inv.CursorOwner, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 6 {
		if inv.Export, err = x.Bool(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 7)
}

func encBatchRequest(x wire.Enc, r *batchRequest) error {
	n := 7
	if r.Policy == nil {
		n = 6
		if r.Roots == nil {
			n = 5
			if !r.Parallel {
				n = 4
				if !r.KeepSession {
					n = 3
					if r.Session == 0 {
						n = 2
						if r.Calls == nil {
							n = 1
							if r.Root == 0 {
								n = 0
							}
						}
					}
				}
			}
		}
	}
	x.BeginStruct("brmi.req", n)
	if n > 0 {
		x.Uint(r.Root)
	}
	if n > 1 {
		if r.Calls == nil {
			x.Nil()
		} else {
			x.Slice(len(r.Calls))
			for i := range r.Calls {
				if err := encInvocation(x, &r.Calls[i]); err != nil {
					return err
				}
			}
		}
	}
	if n > 2 {
		x.Uint(r.Session)
	}
	if n > 3 {
		x.Bool(r.KeepSession)
	}
	if n > 4 {
		x.Bool(r.Parallel)
	}
	if n > 5 {
		if r.Roots == nil {
			x.Nil()
		} else {
			x.Slice(len(r.Roots))
			for _, id := range r.Roots {
				x.Uint(id)
			}
		}
	}
	if n > 6 {
		if err := x.Value(r.Policy); err != nil {
			return err
		}
	}
	return nil
}

func decBatchRequest(x wire.Dec, r *batchRequest, n int) error {
	var err error
	if n > 0 {
		if r.Root, err = x.Uint(); err != nil {
			return err
		}
	}
	if n > 1 {
		cn, err := x.SliceLen()
		if err != nil {
			return err
		}
		if cn >= 0 {
			r.Calls = make([]invocationData, cn)
			for i := range r.Calls {
				fn, err := x.StructFields("brmi.inv")
				if err != nil {
					return err
				}
				if fn < 0 {
					continue
				}
				if err := decInvocation(x, &r.Calls[i], fn); err != nil {
					return err
				}
			}
		}
	}
	if n > 2 {
		if r.Session, err = x.Uint(); err != nil {
			return err
		}
	}
	if n > 3 {
		if r.KeepSession, err = x.Bool(); err != nil {
			return err
		}
	}
	if n > 4 {
		if r.Parallel, err = x.Bool(); err != nil {
			return err
		}
	}
	if n > 5 {
		rn, err := x.SliceLen()
		if err != nil {
			return err
		}
		if rn >= 0 {
			r.Roots = make([]uint64, rn)
			for i := range r.Roots {
				if r.Roots[i], err = x.Uint(); err != nil {
					return err
				}
			}
		}
	}
	if n > 6 {
		v, err := x.Value()
		if err != nil {
			return err
		}
		if v != nil {
			p, ok := v.(*Policy)
			if !ok {
				return &wire.CorruptError{Detail: "batch request policy has wrong type"}
			}
			r.Policy = p
		}
	}
	return x.SkipFields(n - 7)
}

func encCallResult(x wire.Enc, r *callResult) error {
	n := 10
	if r.Attempts == 0 {
		n = 9
		if r.Ref.IsZero() {
			n = 8
			if r.BlockErrs == nil {
				n = 7
				if r.Block == nil {
					n = 6
					if r.Count == 0 {
						n = 5
						if r.Base == 0 {
							n = 4
							if !r.Skipped {
								n = 3
								if r.Err == nil {
									n = 2
									if r.Value == nil {
										n = 1
										if r.Seq == 0 {
											n = 0
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	x.BeginStruct("brmi.result", n)
	if n > 0 {
		x.Int(r.Seq)
	}
	if n > 1 {
		if err := x.Value(r.Value); err != nil {
			return err
		}
	}
	if n > 2 {
		if err := x.Value(r.Err); err != nil {
			return err
		}
	}
	if n > 3 {
		x.Bool(r.Skipped)
	}
	if n > 4 {
		x.Int(r.Base)
	}
	if n > 5 {
		x.Int(r.Count)
	}
	if n > 6 {
		if err := x.Value(r.Block); err != nil {
			return err
		}
	}
	if n > 7 {
		if err := x.Value(r.BlockErrs); err != nil {
			return err
		}
	}
	if n > 8 {
		x.RefVal(r.Ref)
	}
	if n > 9 {
		x.Int(r.Attempts)
	}
	return nil
}

func decCallResult(x wire.Dec, r *callResult, n int) error {
	var err error
	if n > 0 {
		if r.Seq, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 1 {
		if r.Value, err = x.Value(); err != nil {
			return err
		}
	}
	if n > 2 {
		if r.Err, err = x.ErrVal(); err != nil {
			return err
		}
	}
	if n > 3 {
		if r.Skipped, err = x.Bool(); err != nil {
			return err
		}
	}
	if n > 4 {
		if r.Base, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 5 {
		if r.Count, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 6 {
		if r.Block, err = decAnySlice(x); err != nil {
			return err
		}
	}
	if n > 7 {
		if r.BlockErrs, err = decAnySlice(x); err != nil {
			return err
		}
	}
	if n > 8 {
		if r.Ref, err = x.RefVal(); err != nil {
			return err
		}
	}
	if n > 9 {
		if r.Attempts, err = x.Int(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 10)
}

// decAnySlice decodes a []any field (the generic wire form of Block and
// BlockErrs).
func decAnySlice(x wire.Dec) ([]any, error) {
	n, err := x.SliceLen()
	if err != nil || n < 0 {
		return nil, err
	}
	out := make([]any, n)
	for i := range out {
		if out[i], err = x.Value(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func encBatchResponse(x wire.Enc, r *batchResponse) error {
	n := 3
	if r.Restarts == 0 {
		n = 2
		if r.Session == 0 {
			n = 1
			if r.Results == nil {
				n = 0
			}
		}
	}
	x.BeginStruct("brmi.resp", n)
	if n > 0 {
		if r.Results == nil {
			x.Nil()
		} else {
			x.Slice(len(r.Results))
			for i := range r.Results {
				if err := encCallResult(x, &r.Results[i]); err != nil {
					return err
				}
			}
		}
	}
	if n > 1 {
		x.Uint(r.Session)
	}
	if n > 2 {
		x.Int(r.Restarts)
	}
	return nil
}

func decBatchResponse(x wire.Dec, r *batchResponse, n int) error {
	var err error
	if n > 0 {
		rn, err := x.SliceLen()
		if err != nil {
			return err
		}
		if rn >= 0 {
			r.Results = make([]callResult, rn)
			for i := range r.Results {
				fn, err := x.StructFields("brmi.result")
				if err != nil {
					return err
				}
				if fn < 0 {
					continue
				}
				if err := decCallResult(x, &r.Results[i], fn); err != nil {
					return err
				}
			}
		}
	}
	if n > 1 {
		if r.Session, err = x.Uint(); err != nil {
			return err
		}
	}
	if n > 2 {
		if r.Restarts, err = x.Int(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 3)
}
