package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rcache"
	"repro/internal/rmi"
	"repro/internal/stats"
)

// cacheFixture is newFixture plus an instrumented client peer and a shared
// lease cache, the shape the cluster layer uses in production.
type cacheFixture struct {
	*fixture
	reg   *stats.Registry
	cache *rcache.Cache
}

func newCacheFixture(t *testing.T) *cacheFixture {
	t.Helper()
	network := netsim.New(netsim.Instant)
	t.Cleanup(func() { _ = network.Close() })
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	if err := server.Serve("server"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	exec, err := core.Install(server)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Stop)
	reg := stats.New()
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf), rmi.WithStatsRegistry(reg))
	t.Cleanup(func() { _ = client.Close() })

	dir := &directory{}
	dir.files = append(dir.files, &file{dir: dir, name: "a.txt", size: 1, date: baseDate(1)})
	dir.files = append(dir.files, &file{dir: dir, name: "b.txt", size: 2, date: baseDate(2)})
	dirRef, err := server.Export(dir, "coretest.Directory")
	if err != nil {
		t.Fatal(err)
	}
	return &cacheFixture{
		fixture: &fixture{server: server, client: client, exec: exec, dir: dir, dirRef: dirRef},
		reg:     reg,
		cache:   rcache.New(reg),
	}
}

func (f *cacheFixture) counter(t *testing.T, name string) int64 {
	t.Helper()
	return f.reg.Snapshot().Counter(name)
}

func names(t *testing.T, fut *core.Future) []string {
	t.Helper()
	v, err := fut.Get()
	if err != nil {
		t.Fatalf("future: %v", err)
	}
	raw, ok := v.([]any)
	if !ok {
		t.Fatalf("future value %T, want []any", v)
	}
	out := make([]string, len(raw))
	for i, e := range raw {
		out[i] = e.(string)
	}
	return out
}

// TestCacheMissFillsAndHitSkipsWire: the first CallRO pays the round trip
// and fills the cache; a second batch's identical CallRO settles from the
// lease before any flush, and its all-hit flush writes zero frames.
func TestCacheMissFillsAndHitSkipsWire(t *testing.T) {
	f := newCacheFixture(t)
	ctx := context.Background()

	b1 := core.New(f.client, f.dirRef, core.WithCache(f.cache))
	fut1 := b1.Root().CallRO("Names")
	if err := b1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got1 := names(t, fut1)
	if f.counter(t, "cache.misses") != 1 || f.counter(t, "cache.hits") != 0 {
		t.Fatalf("after miss: hits=%d misses=%d", f.counter(t, "cache.hits"), f.counter(t, "cache.misses"))
	}

	framesBefore := f.counter(t, "transport.frames_out")
	b2 := core.New(f.client, f.dirRef, core.WithCache(f.cache))
	fut2 := b2.Root().CallRO("Names")
	// The hit settles before flush: the future is readable immediately.
	got2 := names(t, fut2)
	if err := b2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if f.counter(t, "cache.hits") != 1 {
		t.Fatalf("cache.hits = %d, want 1", f.counter(t, "cache.hits"))
	}
	if d := f.counter(t, "transport.frames_out") - framesBefore; d != 0 {
		t.Fatalf("all-hit batch wrote %d frames, want 0", d)
	}
	if b2.PendingCalls() != 0 {
		t.Fatalf("all-hit batch recorded %d calls", b2.PendingCalls())
	}
	if len(got1) != 2 || len(got2) != 2 || got1[0] != got2[0] {
		t.Fatalf("cached value diverged: %v vs %v", got1, got2)
	}
}

// TestCacheWriteInvalidatesAtRecordTime: a non-readonly call through any
// proxy of the object's chain drops its leases before the write even
// flushes, so a later readonly call re-fetches.
func TestCacheWriteInvalidatesAtRecordTime(t *testing.T) {
	f := newCacheFixture(t)
	ctx := context.Background()

	b1 := core.New(f.client, f.dirRef, core.WithCache(f.cache))
	_ = b1.Root().CallRO("Names")
	if err := b1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if f.cache.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", f.cache.Len())
	}

	// The write travels through a derived proxy (GetFile -> Delete); the
	// invalidation must attribute it to the chain's root object.
	b2 := core.New(f.client, f.dirRef, core.WithCache(f.cache))
	fp := b2.Root().CallBatch("GetFile", "a.txt")
	_ = fp.Call("Delete")
	if f.cache.Len() != 0 {
		t.Fatalf("write recorded but %d leases still live", f.cache.Len())
	}
	if err := b2.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	b3 := core.New(f.client, f.dirRef, core.WithCache(f.cache))
	fut := b3.Root().CallRO("Names")
	if err := b3.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := names(t, fut); len(got) != 1 || got[0] != "b.txt" {
		t.Fatalf("post-write read = %v, want [b.txt]", got)
	}
	if f.counter(t, "cache.invalidations") == 0 {
		t.Fatal("cache.invalidations not counted")
	}
}

// TestCacheEpochBumpDropsLeases: bumping the ring epoch makes every older
// lease unservable without touching the entries.
func TestCacheEpochBumpDropsLeases(t *testing.T) {
	f := newCacheFixture(t)
	ctx := context.Background()
	var epoch uint64
	cache := rcache.New(f.reg, rcache.WithEpoch(func() uint64 { return epoch }))

	b1 := core.New(f.client, f.dirRef, core.WithCache(cache))
	_ = b1.Root().CallRO("Names")
	if err := b1.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	epoch++ // membership change / migration
	b2 := core.New(f.client, f.dirRef, core.WithCache(cache))
	fut := b2.Root().CallRO("Names")
	//brmivet:ignore futurederef asserts the stale-epoch lease is NOT served before flush
	if _, err := fut.Get(); err != core.ErrPending {
		t.Fatalf("stale-epoch lease served: Get = %v, want ErrPending pre-flush", err)
	}
	if err := b2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := names(t, fut); len(got) != 2 {
		t.Fatalf("re-fetched read = %v", got)
	}
}

// TestCallROUncachedBatchBehavesLikeCall: without WithCache, CallRO is an
// ordinary recorded call — same wire traffic, same results.
func TestCallROUncachedBatchBehavesLikeCall(t *testing.T) {
	f := newCacheFixture(t)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		b := core.New(f.client, f.dirRef)
		fut := b.Root().CallRO("Names")
		if err := b.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		if got := names(t, fut); len(got) != 2 {
			t.Fatalf("round %d: %v", i, got)
		}
	}
	if f.counter(t, "cache.hits")+f.counter(t, "cache.misses") != 0 {
		t.Fatal("uncached batch touched cache counters")
	}
}
