package core

import (
	"repro/internal/wire"
)

// Future is the placeholder for a batched call's result (§2, §3.2). It is
// created at recording time and populated by Flush. Reading it earlier
// returns ErrPending; reading it after a failed dependency rethrows the
// error the value depends on (§3.3).
type Future struct {
	st *futureState
}

// futureState carries the settled result. For futures created within a
// cursor, the value is a column of the cursor's result block and changes
// with the cursor position (§3.4, "the future values may change on each
// iteration of the loop").
type futureState struct {
	b   *Batch
	seq int64

	settled bool
	val     any
	err     error

	cursor    *Cursor
	block     []any
	blockErrs []any
}

// Get returns the settled value. Before flush it returns ErrPending; if the
// batch failed as a whole it returns that BatchError; if the call (or a call
// it depends on) threw, it rethrows that error.
func (f *Future) Get() (any, error) {
	if f == nil || f.st == nil {
		return nil, ErrPending
	}
	return f.st.get()
}

// Err returns only the error part of Get. Useful for void methods, whose
// futures exist solely for exception checking (§3.3: "a remote method that
// returns void has type Future<Void> ... so its exceptions can also be
// checked").
func (f *Future) Err() error {
	_, err := f.Get()
	return err
}

func (s *futureState) get() (any, error) {
	// The whole read happens under the batch lock: settlement, batch-wide
	// failure, and the cursor position must be observed consistently.
	s.b.mu.Lock()
	defer s.b.mu.Unlock()

	if !s.settled {
		if s.b.failure != nil {
			return nil, s.b.failure
		}
		return nil, ErrPending
	}
	if s.cursor != nil {
		pos := s.cursor.pos
		switch {
		case s.cursor.failed != nil:
			return nil, s.cursor.failed
		case pos < 0:
			return nil, ErrCursorNotStarted
		case pos >= int(s.cursor.count):
			return nil, ErrCursorExhausted
		}
		if int(pos) < len(s.blockErrs) {
			if e, ok := s.blockErrs[pos].(error); ok && e != nil {
				return nil, e
			}
		}
		if int(pos) < len(s.block) {
			return s.b.peer.FromWire(s.block[pos]), nil
		}
		return nil, nil
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.val, nil
}

// TypedFuture wraps a Future with a concrete result type, the Go analogue
// of the paper's Future<T>. Generated batch interfaces return TypedFutures.
type TypedFuture[T any] struct {
	f *Future
}

// Typed views f as producing values of type T.
func Typed[T any](f *Future) TypedFuture[T] { return TypedFuture[T]{f: f} }

// Get returns the settled, typed value.
func (tf TypedFuture[T]) Get() (T, error) {
	var zero T
	v, err := tf.f.Get()
	if err != nil {
		return zero, err
	}
	return convertTo[T](v)
}

// Future returns the underlying dynamic future.
func (tf TypedFuture[T]) Future() *Future { return tf.f }

// convertTo adapts wire-decoded dynamic values (int64, uint64, float64, ...)
// to the requested static type.
func convertTo[T any](v any) (T, error) {
	return wire.As[T](v)
}

// Convert adapts a wire-decoded dynamic value to a static type. Generated
// batch interfaces use it for result conversion.
func Convert[T any](v any) (T, error) {
	return wire.As[T](v)
}
