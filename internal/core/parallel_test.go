package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rmi"
)

// rendezvous is a pair of remote objects whose methods only complete when
// BOTH have been entered: executed sequentially they time out, executed
// concurrently they hand off and return. It proves WithParallelRoots really
// overlaps root groups.
type rendezvous struct {
	rmi.RemoteBase
	name  string
	enter chan string
	gate  <-chan string
}

func newRendezvousPair() (*rendezvous, *rendezvous) {
	a := &rendezvous{name: "a", enter: make(chan string, 1)}
	b := &rendezvous{name: "b", enter: make(chan string, 1)}
	a.gate = b.enter
	b.gate = a.enter
	return a, b
}

// Meet announces this side and waits for the peer; it errors out rather
// than hanging when the peer never arrives (sequential execution).
func (r *rendezvous) Meet() (string, error) {
	r.enter <- r.name
	select {
	case peer := <-r.gate:
		return r.name + "+" + peer, nil
	case <-time.After(2 * time.Second):
		return "", fmt.Errorf("rendezvous %s: peer never arrived", r.name)
	}
}

// counter is a root whose state observes per-root program order.
type counter struct {
	rmi.RemoteBase
	vals []int64
}

func (c *counter) Add(v int64) int64 {
	c.vals = append(c.vals, v)
	return int64(len(c.vals))
}

func (c *counter) Fail() (int64, error) { return 0, errors.New("counter boom") }

// inspector reads another root's result, creating cross-root dataflow.
type inspector struct {
	rmi.RemoteBase
}

func (i *inspector) NameOf(f any) (string, error) {
	n, ok := f.(interface{ GetName() string })
	if !ok {
		return "", fmt.Errorf("inspector: %T has no name", f)
	}
	return n.GetName(), nil
}

// TestParallelRootsConcurrent proves the opt-in replays independent roots
// concurrently: the rendezvous only completes when both root groups run at
// the same time.
func TestParallelRootsConcurrent(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	ra, rb := newRendezvousPair()
	refA, err := fx.server.Export(ra, "coretest.Rendezvous")
	if err != nil {
		t.Fatal(err)
	}
	refB, err := fx.server.Export(rb, "coretest.Rendezvous")
	if err != nil {
		t.Fatal(err)
	}

	b := core.New(fx.client, refA, core.WithParallelRoots())
	pa := b.Root()
	pb, err := b.AddRoot(refB)
	if err != nil {
		t.Fatal(err)
	}
	fa := pa.Call("Meet")
	fb := pb.Call("Meet")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err := core.Typed[string](fa).Get(); err != nil || got != "a+b" {
		t.Errorf("root a = %q, %v; want a+b", got, err)
	}
	if got, err := core.Typed[string](fb).Get(); err != nil || got != "b+a" {
		t.Errorf("root b = %q, %v; want b+a", got, err)
	}
}

// TestParallelRootsMatchesSequential checks result parity on a multi-root
// batch with in-group dependencies: same values, same per-root order,
// with and without the option.
func TestParallelRootsMatchesSequential(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		fx := newFixture(t)
		ctx := context.Background()
		roots := make([]*counter, 3)
		var opts []core.Option
		if parallel {
			opts = append(opts, core.WithParallelRoots())
		}
		var b *core.Batch
		proxies := make([]*core.Proxy, 3)
		for i := range roots {
			roots[i] = &counter{}
			ref, err := fx.server.Export(roots[i], "coretest.Counter")
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				b = core.New(fx.client, ref, opts...)
				proxies[i] = b.Root()
			} else {
				p, err := b.AddRoot(ref)
				if err != nil {
					t.Fatal(err)
				}
				proxies[i] = p
			}
		}
		futures := make([][]*core.Future, 3)
		for i, p := range proxies {
			for k := 0; k < 4; k++ {
				futures[i] = append(futures[i], p.Call("Add", int64(10*i+k)))
			}
		}
		if err := b.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		for i := range proxies {
			for k, f := range futures[i] {
				got, err := core.Typed[int64](f).Get()
				if err != nil || got != int64(k+1) {
					t.Errorf("parallel=%v root %d call %d = %d, %v; want %d", parallel, i, k, got, err, k+1)
				}
			}
			if len(roots[i].vals) != 4 {
				t.Errorf("parallel=%v root %d ran %d calls, want 4", parallel, i, len(roots[i].vals))
			}
			for k, v := range roots[i].vals {
				if v != int64(10*i+k) {
					t.Errorf("parallel=%v root %d per-root order violated: vals=%v", parallel, i, roots[i].vals)
				}
			}
		}
	}
}

// TestParallelRootsAbortScopedPerRoot: under the default abort policy, a
// failure in one root's group skips only that group's later calls; the
// other root completes.
func TestParallelRootsAbortScopedPerRoot(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	ca, cb := &counter{}, &counter{}
	refA, err := fx.server.Export(ca, "coretest.Counter")
	if err != nil {
		t.Fatal(err)
	}
	refB, err := fx.server.Export(cb, "coretest.Counter")
	if err != nil {
		t.Fatal(err)
	}
	b := core.New(fx.client, refA, core.WithParallelRoots())
	pa := b.Root()
	pb, err := b.AddRoot(refB)
	if err != nil {
		t.Fatal(err)
	}
	fail := pa.Call("Fail")
	after := pa.Call("Add", int64(1))
	okb := pb.Call("Add", int64(2))
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fail.Err(); err == nil {
		t.Error("failing call reported no error")
	}
	if err := after.Err(); err == nil {
		t.Error("call after abort in the failing group reported no error")
	}
	if got, err := core.Typed[int64](okb).Get(); err != nil || got != 1 {
		t.Errorf("independent root result = %d, %v; want 1 (unaffected by the other group's abort)", got, err)
	}
	if len(ca.vals) != 0 {
		t.Errorf("aborted group still executed %v", ca.vals)
	}
}

// TestParallelRootsCrossRootFallsBack: a recording with cross-root dataflow
// cannot be partitioned; the executor must fall back to sequential replay
// and still produce correct results.
func TestParallelRootsCrossRootFallsBack(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	b := core.New(fx.client, fx.dirRef, core.WithParallelRoots())
	insp := &inspector{}
	inspRef, err := fx.server.Export(insp, "coretest.Inspector")
	if err != nil {
		t.Fatal(err)
	}
	root := b.Root()
	root2, err := b.AddRoot(inspRef)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-root dependency: a file produced by root 1 passed to root 2.
	f := root.CallBatch("GetFile", "A.txt")
	name2 := root2.Call("NameOf", f)
	name := root.CallBatch("GetFile", "B.txt").Call("GetName")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err := core.Typed[string](name2).Get(); err != nil || got != "A.txt" {
		t.Errorf("cross-root dependency = %q, %v; want A.txt", got, err)
	}
	if got, err := core.Typed[string](name).Get(); err != nil || got != "B.txt" {
		t.Errorf("root 1 call = %q, %v", got, err)
	}
}

// TestParallelRootsRestartExhaustedKeepsSession: a parallel batch whose
// policy keeps demanding ActionRestart until maxRestarts is exhausted must
// still bind its created objects into the session, so a chained flush can
// resolve them — exactly like sequential replay.
func TestParallelRootsRestartExhaustedKeepsSession(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	ca := &counter{}
	refA, err := fx.server.Export(ca, "coretest.Counter")
	if err != nil {
		t.Fatal(err)
	}
	// Every Fail triggers a whole-batch restart until the bound is hit.
	pol := core.CustomPolicy().SetAction("", "Fail", core.AnyIndex, core.ActionRestart)
	b := core.New(fx.client, fx.dirRef, core.WithParallelRoots(), core.WithPolicy(pol))
	root := b.Root()
	pa, err := b.AddRoot(refA)
	if err != nil {
		t.Fatal(err)
	}
	f := root.CallBatch("GetFile", "A.txt") // remote result lives in the session
	fail := pa.Call("Fail")
	if err := b.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fail.Err(); err == nil {
		t.Error("restart-exhausted call reported no error")
	}
	// Chained continuation: the remote result recorded before the restarts
	// must still resolve server-side.
	name := f.Call("GetName")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err := core.Typed[string](name).Get(); err != nil || got != "A.txt" {
		t.Errorf("chained call after exhausted restarts = %q, %v; want A.txt", got, err)
	}
}

// TestParallelRootsChainedFallsBack: a chained second flush referencing the
// first flush's results cannot be partitioned; results must stay correct.
func TestParallelRootsChainedFallsBack(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef, core.WithParallelRoots())
	root := b.Root()
	f := root.CallBatch("GetFile", "A.txt")
	if err := b.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	name := f.Call("GetName")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err := core.Typed[string](name).Get(); err != nil || got != "A.txt" {
		t.Errorf("chained call = %q, %v", got, err)
	}
}
