package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// opSpec is one randomly generated client operation. Kind selects the
// operation, Sel selects a file name or an existing proxy.
type opSpec struct {
	Kind uint8
	Sel  uint8
}

const (
	opGetFile uint8 = iota
	opGetName
	opGetSize
	opRootNames
	opKinds
)

// expected is the oracle's prediction for one future: a value or an error
// type name.
type expected struct {
	errIs string // "", "notfound", "permission"
	value any
}

// TestQuickBatchMatchesDirectExecution is the core correctness property of
// explicit batching (§3): executing an arbitrary recorded program in ONE
// batch with the continue policy yields, future by future, exactly the
// outcome of executing the same calls directly — including dependency-aware
// error propagation.
func TestQuickBatchMatchesDirectExecution(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	names := []string{"index.html", "A.txt", "B.txt", "secret.bin", "missing.txt", "ghost.dat"}
	// Model mirror of the fixture (name -> size, locked); missing files
	// are absent.
	sizes := map[string]int{"index.html": 1024, "A.txt": 42, "B.txt": 77, "secret.bin": 512}
	locked := map[string]bool{"secret.bin": true}

	runProgram := func(ops []opSpec) error {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		b := core.New(fx.client, fx.dirRef, core.WithPolicy(core.ContinuePolicy()))
		root := b.Root()

		type proxyState struct {
			p    *core.Proxy
			name string
			ok   bool // oracle: file exists
		}
		var proxies []proxyState
		var futures []*core.Future
		var oracle []expected

		for _, op := range ops {
			switch op.Kind % opKinds {
			case opGetFile:
				name := names[int(op.Sel)%len(names)]
				_, exists := sizes[name]
				proxies = append(proxies, proxyState{
					p:    root.CallBatch("GetFile", name),
					name: name,
					ok:   exists,
				})
			case opGetName:
				if len(proxies) == 0 {
					continue
				}
				ps := proxies[int(op.Sel)%len(proxies)]
				futures = append(futures, ps.p.Call("GetName"))
				if ps.ok {
					oracle = append(oracle, expected{value: ps.name})
				} else {
					oracle = append(oracle, expected{errIs: "notfound"})
				}
			case opGetSize:
				if len(proxies) == 0 {
					continue
				}
				ps := proxies[int(op.Sel)%len(proxies)]
				futures = append(futures, ps.p.Call("GetSize"))
				switch {
				case !ps.ok:
					oracle = append(oracle, expected{errIs: "notfound"})
				case locked[ps.name]:
					oracle = append(oracle, expected{errIs: "permission"})
				default:
					oracle = append(oracle, expected{value: int64(sizes[ps.name])})
				}
			case opRootNames:
				futures = append(futures, root.Call("Names"))
				oracle = append(oracle, expected{value: nil}) // checked loosely below
			}
		}

		if err := root.Flush(ctx); err != nil {
			return fmt.Errorf("flush: %w", err)
		}

		for i, f := range futures {
			want := oracle[i]
			got, err := f.Get()
			switch want.errIs {
			case "notfound":
				var fnf *fileNotFoundError
				if !errors.As(err, &fnf) {
					return fmt.Errorf("future %d: got %v, want fileNotFoundError", i, err)
				}
			case "permission":
				var pe *permissionError
				if !errors.As(err, &pe) {
					return fmt.Errorf("future %d: got %v, want permissionError", i, err)
				}
			default:
				if err != nil {
					return fmt.Errorf("future %d: unexpected error %v", i, err)
				}
				if want.value != nil && got != want.value {
					return fmt.Errorf("future %d: got %#v, want %#v", i, got, want.value)
				}
			}
		}
		return nil
	}

	f := func(ops []opSpec) bool {
		if err := runProgram(ops); err != nil {
			t.Logf("program %v: %v", ops, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickCursorBlocksMatchElements: for random directory sizes, a cursor
// over AllFiles with GetName yields exactly the per-element names, in order.
func TestQuickCursorBlocksMatchElements(t *testing.T) {
	ctx := context.Background()
	f := func(n uint8) bool {
		count := int(n % 17)
		fx := newFixture(t)
		fx.dir.mu.Lock()
		fx.dir.files = nil
		for i := 0; i < count; i++ {
			fx.dir.files = append(fx.dir.files, &file{
				dir: fx.dir, name: fmt.Sprintf("f%03d", i), size: i, date: baseDate(1 + i%27),
			})
		}
		fx.dir.mu.Unlock()

		b := core.New(fx.client, fx.dirRef)
		cursor := b.Root().CallCursor("AllFiles")
		name := cursor.Call("GetName")
		if err := b.Flush(ctx); err != nil {
			t.Logf("flush: %v", err)
			return false
		}
		got, err := cursor.Len()
		if err != nil || got != count {
			t.Logf("len: %v %d want %d", err, got, count)
			return false
		}
		i := 0
		for cursor.Next() {
			v, err := core.Typed[string](name).Get()
			if err != nil || v != fmt.Sprintf("f%03d", i) {
				t.Logf("element %d: %v %q", i, err, v)
				return false
			}
			i++
		}
		return i == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestQuickPolicyActionForTotal: actionFor must return a valid action for
// arbitrary rule sets (never zero / never panics).
func TestQuickPolicyActionForTotal(t *testing.T) {
	f := func(rules []struct {
		ErrType, Method uint8
		Index           int8
		Act             uint8
	}, errPick, methodPick uint8, index uint8) bool {
		p := core.CustomPolicy()
		errNames := []string{"", "coretest.Permission", "coretest.FileNotFound"}
		methods := []string{"", "GetSize", "GetName"}
		for _, r := range rules {
			act := core.Action(int(r.Act)%4) + core.ActionBreak
			if act > core.ActionRestart {
				act = core.ActionBreak
			}
			p.SetAction(errNames[int(r.ErrType)%3], methods[int(r.Method)%3], int(r.Index), act)
		}
		err := &permissionError{File: "x"}
		got := core.PolicyActionForTest(p, err, methods[int(methodPick)%3], int(index))
		return got >= core.ActionBreak && got <= core.ActionRestart
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
