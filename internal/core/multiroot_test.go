package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// TestAddRootSingleRoundTrip checks the multi-root extension: a second
// exported object on the same server joins the batch, calls on both roots
// ride one flush, and a data dependency from one root's result into the
// other root's call replays server-side.
func TestAddRootSingleRoundTrip(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	// A second, independently exported directory.
	dir2 := &directory{}
	dir2.files = append(dir2.files, &file{dir: dir2, name: "other.txt", size: 9, date: baseDate(4)})
	dir2Ref, err := fx.server.Export(dir2, "coretest.Directory")
	if err != nil {
		t.Fatal(err)
	}

	before := fx.client.CallCount()
	b := core.New(fx.client, fx.dirRef)
	root := b.Root()
	root2, err := b.AddRoot(dir2Ref)
	if err != nil {
		t.Fatal(err)
	}
	name1 := root.CallBatch("GetFile", "A.txt").Call("GetName")
	name2 := root2.CallBatch("GetFile", "other.txt").Call("GetName")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if rounds := fx.client.CallCount() - before; rounds != 1 {
		t.Fatalf("two-root batch used %d round trips, want 1", rounds)
	}
	if got, err := core.Typed[string](name1).Get(); err != nil || got != "A.txt" {
		t.Errorf("root 1 = %q, %v", got, err)
	}
	if got, err := core.Typed[string](name2).Get(); err != nil || got != "other.txt" {
		t.Errorf("root 2 = %q, %v", got, err)
	}
}

func TestAddRootDedupes(t *testing.T) {
	fx := newFixture(t)
	b := core.New(fx.client, fx.dirRef)

	// Adding the primary root's own ref yields a root-equivalent proxy.
	p, err := b.AddRoot(fx.dirRef)
	if err != nil {
		t.Fatal(err)
	}
	f := p.CallBatch("GetFile", "A.txt").Call("GetName")
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, err := core.Typed[string](f).Get(); err != nil || got != "A.txt" {
		t.Errorf("primary-as-extra root = %q, %v", got, err)
	}
}

func TestAddRootForeignEndpointRejected(t *testing.T) {
	fx := newFixture(t)
	//brmivet:ignore unflushed the AddRoot rejection is the subject; nothing is recorded to flush
	b := core.New(fx.client, fx.dirRef)
	_, err := b.AddRoot(wire.Ref{Endpoint: "elsewhere", ObjID: 99, Iface: "coretest.Directory"})
	if !errors.Is(err, core.ErrForeignRoot) {
		t.Fatalf("AddRoot on foreign endpoint = %v, want ErrForeignRoot", err)
	}
}

func TestAddRootUnknownObject(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	b := core.New(fx.client, fx.dirRef)
	p, err := b.AddRoot(wire.Ref{Endpoint: fx.dirRef.Endpoint, ObjID: 4242, Iface: "coretest.Directory"})
	if err != nil {
		t.Fatal(err)
	}
	p.Call("AllFiles")
	err = b.Flush(ctx)
	var nso *rmi.NoSuchObjectError
	if !errors.As(err, &nso) || nso.ObjID != 4242 {
		t.Fatalf("flush with unknown extra root = %v, want NoSuchObjectError{4242}", err)
	}
}

// TestAddRootChained checks that an extra root added between chained
// flushes is usable in the continuation.
func TestAddRootChained(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	dir2 := &directory{}
	dir2.files = append(dir2.files, &file{dir: dir2, name: "late.txt", size: 1, date: baseDate(5)})
	dir2Ref, err := fx.server.Export(dir2, "coretest.Directory")
	if err != nil {
		t.Fatal(err)
	}

	b := core.New(fx.client, fx.dirRef)
	first := b.Root().CallBatch("GetFile", "A.txt").Call("GetName")
	if err := b.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err := core.Typed[string](first).Get(); err != nil || got != "A.txt" {
		t.Fatalf("first flush = %q, %v", got, err)
	}

	root2, err := b.AddRoot(dir2Ref)
	if err != nil {
		t.Fatal(err)
	}
	second := root2.CallBatch("GetFile", "late.txt").Call("GetName")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err := core.Typed[string](second).Get(); err != nil || got != "late.txt" {
		t.Errorf("chained extra-root call = %q, %v", got, err)
	}
}

func TestAddRootAfterCloseFails(t *testing.T) {
	fx := newFixture(t)
	b := core.New(fx.client, fx.dirRef)
	b.Root().Call("AllFiles")
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddRoot(fx.dirRef); !errors.Is(err, core.ErrBatchClosed) {
		t.Fatalf("AddRoot after flush = %v, want ErrBatchClosed", err)
	}
}
