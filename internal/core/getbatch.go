package core

import (
	"context"
	"fmt"

	"repro/internal/rmi"
	"repro/internal/wire"
)

// GetBatch: the streaming bulk-read service (the Get-Batch workload from
// the paper's evaluation, §5). One request names N exported objects; the
// server streams one entry per object, in request order, through the rmi
// stream layer — so a 64-object read is ONE request and the client
// consumes early entries while later ones are still being produced.
//
// Entries carry a caller-assigned index so the cluster layer can fan a
// global batch out across servers and merge the per-server streams back
// into request order (see cluster.GetBatch).

// GetBatchService is the rmi stream service name the Executor serves.
const GetBatchService = "core.getbatch"

// getBatchRequest names the objects to read, in request order. Indexes are
// caller-assigned (global positions in a fanned-out batch), parallel to
// ObjIDs. An empty Method reads each object's Snapshot(); otherwise Method
// is invoked with no arguments and its first result is the value.
type getBatchRequest struct {
	ObjIDs  []uint64
	Indexes []int64
	Method  string
}

// GetBatchEntry is one delivered result. A per-object failure (unknown id,
// snapshot error) arrives as Err on that entry; it does not abort the rest
// of the stream.
type GetBatchEntry struct {
	Index int64
	Value any
	Err   error
}

func encGetBatchRequest(x wire.Enc, r *getBatchRequest) error {
	x.BeginStruct("brmi.getbatch.req", 3)
	x.Slice(len(r.ObjIDs))
	for _, id := range r.ObjIDs {
		x.Uint(id)
	}
	x.Slice(len(r.Indexes))
	for _, ix := range r.Indexes {
		x.Int(ix)
	}
	x.Str(r.Method)
	return nil
}

func decGetBatchRequest(x wire.Dec, r *getBatchRequest, n int) error {
	if n > 0 {
		sn, err := x.SliceLen()
		if err != nil {
			return err
		}
		if sn >= 0 {
			r.ObjIDs = make([]uint64, sn)
			for i := range r.ObjIDs {
				if r.ObjIDs[i], err = x.Uint(); err != nil {
					return err
				}
			}
		}
	}
	if n > 1 {
		sn, err := x.SliceLen()
		if err != nil {
			return err
		}
		if sn >= 0 {
			r.Indexes = make([]int64, sn)
			for i := range r.Indexes {
				if r.Indexes[i], err = x.Int(); err != nil {
					return err
				}
			}
		}
	}
	if n > 2 {
		var err error
		if r.Method, err = x.Str(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 3)
}

func encGetBatchEntry(x wire.Enc, r *GetBatchEntry) error {
	x.BeginStruct("brmi.getbatch.entry", 3)
	x.Int(r.Index)
	if err := x.Value(r.Value); err != nil {
		return err
	}
	return x.Value(r.Err)
}

func decGetBatchEntry(x wire.Dec, r *GetBatchEntry, n int) error {
	var err error
	if n > 0 {
		if r.Index, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 1 {
		if r.Value, err = x.Value(); err != nil {
			return err
		}
	}
	if n > 2 {
		if r.Err, err = x.ErrVal(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 3)
}

func init() {
	wire.MustRegisterCompiled("brmi.getbatch.req", true, encGetBatchRequest, decGetBatchRequest)
	wire.MustRegisterCompiled("brmi.getbatch.entry", true, encGetBatchEntry, decGetBatchEntry)
}

// snapshotter is the structural slice of cluster.Movable this package needs
// (a core→cluster import would cycle): state-bearing objects expose their
// migration snapshot, which doubles as the bulk-read payload.
type snapshotter interface {
	Snapshot() (any, error)
}

// serveGetBatch streams one entry per requested object, in request order.
// Registered as the GetBatchService stream handler by Install. Entries are
// read (and counted) under core.getbatch_entries, NOT core.calls_executed:
// replica replay accounting (chaos invariant 6) cross-checks the latter
// against client acks, and bulk reads are not acked calls.
func (e *Executor) serveGetBatch(ctx context.Context, req any, w *rmi.EntryWriter) error {
	r, ok := req.(*getBatchRequest)
	if !ok {
		return fmt.Errorf("brmi: getbatch: unexpected request type %T", req)
	}
	if len(r.Indexes) != len(r.ObjIDs) {
		return fmt.Errorf("brmi: getbatch: %d ids but %d indexes", len(r.ObjIDs), len(r.Indexes))
	}
	e.getbatchBatches.Inc()
	for i, objID := range r.ObjIDs {
		entry := GetBatchEntry{Index: r.Indexes[i]}
		obj, found := e.peer.LocalObject(objID)
		switch {
		case !found:
			entry.Err = &rmi.NoSuchObjectError{ObjID: objID}
		case r.Method != "":
			results, ierr := e.peer.InvokeLocal(ctx, obj, r.Method, nil)
			if ierr != nil {
				entry.Err = ierr
			} else if len(results) > 0 {
				entry.Value = results[0]
			}
		default:
			s, can := obj.(snapshotter)
			if !can {
				entry.Err = fmt.Errorf("brmi: getbatch: object %d (%T) has no snapshot", objID, obj)
			} else if v, serr := s.Snapshot(); serr != nil {
				entry.Err = serr
			} else {
				entry.Value = v
			}
		}
		if entry.Value != nil {
			wv, werr := e.peer.ToWire(entry.Value)
			if werr != nil {
				entry.Value, entry.Err = nil, fmt.Errorf("brmi: getbatch: marshal object %d: %w", objID, werr)
			} else {
				entry.Value = wv
			}
		}
		e.getbatchEntries.Inc()
		if err := w.WriteEntry(&entry); err != nil {
			return err
		}
	}
	return nil
}

// GetBatchStream is the consumer end of one server's GetBatch stream.
type GetBatchStream struct {
	sc *rmi.StreamCall
}

// GetBatch issues one streaming bulk read against endpoint: objIDs are the
// exported object ids to read there, indexes the caller's global positions
// (parallel to objIDs), method the readonly accessor ("" = Snapshot). The
// stream must be drained to io.EOF or closed.
func GetBatch(ctx context.Context, p *rmi.Peer, endpoint string, objIDs []uint64, indexes []int64, method string) (*GetBatchStream, error) {
	sc, err := p.CallStream(ctx, endpoint, GetBatchService, &getBatchRequest{
		ObjIDs:  objIDs,
		Indexes: indexes,
		Method:  method,
	})
	if err != nil {
		return nil, err
	}
	return &GetBatchStream{sc: sc}, nil
}

// Next returns the next entry in request order, or io.EOF after the last.
func (s *GetBatchStream) Next() (*GetBatchEntry, error) {
	v, err := s.sc.Next()
	if err != nil {
		return nil, err
	}
	entry, ok := v.(*GetBatchEntry)
	if !ok {
		return nil, fmt.Errorf("brmi: getbatch: unexpected entry type %T", v)
	}
	return entry, nil
}

// Close abandons the stream, canceling the producer. Safe after EOF.
func (s *GetBatchStream) Close() error { return s.sc.Close() }
