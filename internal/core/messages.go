package core

import "repro/internal/wire"

// Return kinds a recorded call can have. The client decides the kind by
// which recording method the programmer used (Call / CallBatch /
// CallCursor); the server validates it against the actual result shape.
const (
	kindValue  int64 = 1 // result (possibly void) is returned to a future
	kindRemote int64 = 2 // result is a remote object kept server-side (§4.2)
	kindCursor int64 = 3 // result is a slice; sub-batch runs per element (§3.4)
)

// invocationData is the wire form of one recorded call (paper's
// InvocationData, Fig. 3). Field order is a wire-size optimization: the
// encoder omits trailing zero fields, so the rarely-set fields
// (CursorOwner, Export) come last and the common call costs only the
// leading fields on the wire.
type invocationData struct {
	// Seq is the client-assigned sequence number identifying this call and
	// any batch object it creates (§4.1).
	Seq int64
	// Target is the sequence number of the proxy the call was made on, or
	// RootTarget for the batch root.
	Target int64
	// Method is the remote method name.
	Method string
	// Kind is one of kindValue/kindRemote/kindCursor.
	Kind int64
	// Args carries each argument as either a value or a proxy reference.
	Args []batchArg
	// CursorOwner is 1 + the Seq of the cursor this call belongs to, or 0
	// when the call is not cursor-owned (the +1 keeps the no-cursor case at
	// the omittable zero value). Cursor-owned calls execute once per array
	// element. Use owner()/setOwner.
	CursorOwner int64
	// Export asks the server to pin this call's remote result as a fresh
	// exported reference and return it in the call's result (kindRemote
	// only, outside cursors). The cluster layer uses it to forward a
	// result produced on one server into a later-stage sub-batch bound
	// for another server.
	Export bool
}

// owner returns the owning cursor's Seq, or NoCursor.
func (inv *invocationData) owner() int64 {
	if inv.CursorOwner == 0 {
		return NoCursor
	}
	return inv.CursorOwner - 1
}

// setOwner records the owning cursor's Seq.
func (inv *invocationData) setOwner(seq int64) { inv.CursorOwner = seq + 1 }

// RootTarget marks a call on the batch root object.
const RootTarget int64 = -1

// NoCursor marks a call that is not part of a cursor sub-batch.
const NoCursor int64 = -1

// batchArg is one argument: a serialized value or a reference to a batch
// object created earlier in the chain ("only the identifier of the stub is
// needed", §4.1). Val leads so the common by-value argument encodes as a
// single field under trailing-zero omission.
type batchArg struct {
	Val   any
	IsRef bool
	Seq   int64
}

// batchRequest is the payload of one flush (the invokeBatch call). Root and
// Calls lead so the common single-shot flush (no session, no extra roots,
// default policy) costs two fields on the wire.
type batchRequest struct {
	// Root is the export id of the batch's root remote object; used when
	// Session == 0 to create the server context.
	Root uint64
	// Calls are the recorded invocations, in recording order.
	Calls []invocationData
	// Session is 0 for the first flush of a chain, or the id returned by a
	// previous FlushAndContinue.
	Session uint64
	// KeepSession requests that the server retain the object table for a
	// chained batch (§3.5).
	KeepSession bool
	// Parallel opts into relaxed cross-root replay ordering: the executor
	// may run provably independent root groups concurrently (see
	// core.WithParallelRoots). Per-root program order is always preserved.
	Parallel bool
	// Roots are the export ids of additional roots (Batch.AddRoot): other
	// exported objects on the same server addressable within this batch.
	// Calls target extra root i with sequence number RootTarget-1-i. Sent on
	// every flush so chained batches can add roots between flushes.
	Roots []uint64
	// Policy is the exception policy for the whole chain; sent on the
	// first flush when it differs from the default AbortPolicy (the server
	// assumes AbortPolicy when absent).
	Policy *Policy
}

// callResult is the outcome of one recorded call. The happy-path fields
// (Seq, Value) lead: a successful value call costs two wire fields, a
// successful void call one, everything after only appears for errors,
// cursors, retries, and exports.
type callResult struct {
	Seq int64
	// Value is the call's result for kindValue calls.
	Value any
	// Err is the exception this call threw, or the error of the dependency
	// it could not be executed without, or nil.
	Err error
	// Skipped reports the call never ran (aborted batch or failed
	// dependency); Err then carries the originating exception, so futures
	// rethrow the error they depend on (§3.3).
	Skipped bool
	// Base is the server-assigned id region for per-element objects:
	// for kindCursor calls the elements live at Base..Base+Count-1; for
	// kindRemote calls owned by a cursor, the per-element results live at
	// Base..Base+Count-1 as well.
	Base int64
	// Count is the cursor element count (kindCursor) or the block length.
	Count int64
	// Block holds per-element values for kindValue calls owned by a cursor.
	Block []any
	// BlockErrs holds per-element errors parallel to Block (entries nil on
	// success). Also used for cursor-owned kindRemote calls.
	BlockErrs []any
	// Ref is the pinned exported reference of this call's result, set when
	// the request marked the call for export (invocationData.Export). The
	// export is lease-backed: the server's marshal-grace lease protects it
	// until a client dirty arrives (internal/dgc).
	Ref wire.Ref
	// Attempts counts executions when ActionRepeat re-ran the call (0 when
	// the call executed once).
	Attempts int64
}

// batchResponse is the reply to a flush. Results leads: the common
// non-chained, non-restarted reply is one wire field.
type batchResponse struct {
	// Results has one entry per request call, in request order.
	Results []callResult
	// Session is the id to use for the next chained flush (0 when the
	// session was closed).
	Session uint64
	// Restarts counts whole-batch restarts that ActionRestart caused.
	Restarts int64
}

func init() {
	// Codec type registration (deterministic, no I/O). The five hot
	// protocol messages install compiled codecs (see wirecodec.go); Policy
	// and Rule ride the generic reflection plan (sent at most once per
	// chain).
	wire.MustRegisterCompiled("brmi.req", true, encBatchRequest, decBatchRequest)
	wire.MustRegisterCompiled("brmi.resp", true, encBatchResponse, decBatchResponse)
	wire.MustRegisterCompiled("brmi.inv", false, encInvocation, decInvocation)
	wire.MustRegisterCompiled("brmi.arg", false, encBatchArg, decBatchArg)
	wire.MustRegisterCompiled("brmi.result", false, encCallResult, decCallResult)
	wire.MustRegister("brmi.policy", &Policy{})
	wire.MustRegister("brmi.rule", Rule{})
	wire.MustRegisterError("brmi.SessionExpired", &SessionExpiredError{})
	wire.MustRegisterError("brmi.KindMismatch", &KindMismatchError{})
	wire.MustRegisterError("brmi.BatchError", &BatchError{})
}
