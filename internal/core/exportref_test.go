package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rmi"
)

// TestCallBatchExportPinsResult: a call recorded with CallBatchExport
// returns a pinned exported ref alongside the normal batch result, the ref
// is directly callable from any peer, and further batched calls on the
// proxy replay server-side as usual.
func TestCallBatchExportPinsResult(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	b := core.New(fx.client, fx.dirRef)
	p := b.Root().CallBatchExport("GetFile", "A.txt")
	name := p.Call("GetName") // the exported proxy still records normally
	plain := b.Root().CallBatch("GetFile", "B.txt")

	if _, err := p.ExportedRef(); !errors.Is(err, core.ErrPending) {
		t.Fatalf("ExportedRef before flush = %v, want ErrPending", err)
	}
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err := core.Typed[string](name).Get(); err != nil || got != "A.txt" {
		t.Fatalf("batched GetName = %q, %v", got, err)
	}

	ref, err := p.ExportedRef()
	if err != nil {
		t.Fatal(err)
	}
	if ref.IsZero() || ref.Endpoint != "server" {
		t.Fatalf("exported ref = %+v", ref)
	}
	// The pinned ref is a first-class remote reference: plain RMI reaches it.
	res, err := fx.client.Call(ctx, ref, "GetName")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(string); got != "A.txt" {
		t.Errorf("direct call on exported ref = %q, want A.txt", got)
	}

	// Plain CallBatch results stay session-only.
	if _, err := plain.ExportedRef(); !errors.Is(err, core.ErrNotExported) {
		t.Errorf("plain CallBatch ExportedRef = %v, want ErrNotExported", err)
	}
}

// TestCallBatchExportFailedCall: the export ref of a failed call rethrows
// the call's error.
func TestCallBatchExportFailedCall(t *testing.T) {
	fx := newFixture(t)
	b := core.New(fx.client, fx.dirRef)
	p := b.Root().CallBatchExport("GetFile", "missing.txt")
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	var nf *fileNotFoundError
	if _, err := p.ExportedRef(); !errors.As(err, &nf) {
		t.Errorf("ExportedRef of failed call = %v, want fileNotFoundError", err)
	}
}

// TestCallBatchExportInsideCursorRejected: exports are per-call, cursor
// sub-batches per-element; the combination is a recording violation —
// whether the cursor owns the TARGET or sneaks in through an ARGUMENT.
func TestCallBatchExportInsideCursorRejected(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	b := core.New(fx.client, fx.dirRef)
	cur := b.Root().CallCursor("AllFiles")
	cur.CallBatchExport("GetName")
	var be *core.BatchError
	if err := b.Flush(ctx); !errors.As(err, &be) {
		t.Fatalf("flush = %v, want BatchError", err)
	}

	// Cursor ownership via an argument proxy must be rejected too, not
	// silently skipped server-side.
	b2 := core.New(fx.client, fx.dirRef)
	cur2 := b2.Root().CallCursor("AllFiles")
	b2.Root().CallBatchExport("GetFile", cur2)
	if err := b2.Flush(ctx); !errors.As(err, &be) {
		t.Fatalf("flush with cursor-owned argument = %v, want BatchError", err)
	}
}

// TestExportedRefLeaseLifecycle: a pinned result lives under DGC — the
// marshal-grace lease hands off to the client's HoldRef, renewal keeps the
// export alive well past the lease period, and ReleaseRef lets the server
// collect it.
func TestExportedRefLeaseLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("lease timing test")
	}
	ctx := context.Background()
	network := netsim.New(netsim.Instant)
	t.Cleanup(func() { _ = network.Close() })
	const lease = 50 * time.Millisecond
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf), rmi.WithLease(lease))
	if err := server.Serve("server"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	exec, err := core.Install(server)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Stop)
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	t.Cleanup(func() { _ = client.Close() })

	dir := &directory{}
	dir.files = append(dir.files, &file{dir: dir, name: "A.txt", size: 1, date: baseDate(1)})
	dirRef, err := server.Export(dir, "coretest.Directory")
	if err != nil {
		t.Fatal(err)
	}

	b := core.New(client, dirRef)
	p := b.Root().CallBatchExport("GetFile", "A.txt")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	ref, err := p.ExportedRef()
	if err != nil {
		t.Fatal(err)
	}
	client.HoldRef(ref)

	// The client's renewal keeps the auto-export alive far beyond both the
	// marshal grace and the lease period.
	time.Sleep(4 * lease)
	if _, err := client.Call(ctx, ref, "GetName"); err != nil {
		t.Fatalf("held export unreachable after 4 lease periods: %v", err)
	}

	// Releasing the last hold lets the lease table report the object
	// collectable and the export table drop it.
	client.ReleaseRef(ctx, ref)
	deadline := time.Now().Add(4 * lease)
	for {
		_, err := client.Call(ctx, ref, "GetName")
		var nso *rmi.NoSuchObjectError
		if errors.As(err, &nso) {
			break // collected
		}
		if time.Now().After(deadline) {
			t.Fatalf("export still reachable %v after release (last err %v)", 4*lease, err)
		}
		time.Sleep(lease / 4)
	}
}
