package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rcache"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Batch records remote method invocations for one batch chain and executes
// them with Flush / FlushAndContinue. It is the Go analogue of the object
// BRMI.create returns (§3.2).
//
// Like the paper's recording stubs (§4.5), a Batch records one batch at a
// time and is not meant to be shared by concurrent client threads; create
// one Batch per goroutine. The implementation is internally synchronized,
// so misuse corrupts no memory, only recording order.
type Batch struct {
	peer  *rmi.Peer
	root  wire.Ref
	cache *rcache.Cache // lease cache for CallRO, nil when uncached

	// Flush metrics from the peer's registry, nil when uninstrumented.
	reg     *stats.Registry
	flushNs *stats.Histogram // round-trip duration per flush
	acked   *stats.Counter   // results acknowledged for executed calls

	mu      sync.Mutex
	extra   []wire.Ref // additional roots (AddRoot), same endpoint as root
	policy  *Policy
	nextSeq int64
	calls   []invocationData
	// records is parallel to calls (records[i] belongs to calls[i]); the
	// call with sequence number s lives at index s-recBase. A slice beats
	// the old per-call map entry on the recording hot path.
	records  []callRecord
	recBase  int64
	argArena []batchArg // chunked backing for invocationData.Args
	parallel bool
	session  uint64
	sentPol  bool
	closed   bool
	// recErr is a sticky recording violation, reported by the next flush.
	recErr error
	// failure is the batch-wide failure every future rethrows.
	failure error
	// lastOwner tracks cursor-run contiguity (§4.1).
	lastOwner *Cursor
	// onShip observes each successfully executed flush payload (see OnShip).
	onShip func(req any, keep bool)
}

// callRecord links a recorded call to the client object awaiting its result.
type callRecord struct {
	kind   int64
	future *futureState
	proxy  *Proxy // for kindRemote and kindCursor (cursor embeds Proxy)
	cursor *Cursor
	owner  *Cursor
	// Cache fill ticket of a readonly call that missed: the key to fill and
	// the generation/epoch observed at record time. rcache.Cache.Put drops
	// the fill if either moved before the result landed.
	cacheKey   string
	cacheObj   string
	cacheGen   uint64
	cacheEpoch uint64
}

// Option configures a Batch.
type Option func(*Batch)

// WithPolicy sets the exception policy for the chain (default AbortPolicy).
func WithPolicy(p *Policy) Option {
	return func(b *Batch) { b.policy = p }
}

// WithParallelRoots opts the batch into relaxed replay ordering: when the
// recording proves the roots independent (no call targets or consumes
// another root's results), the server may replay each root's calls
// concurrently. Per-root program order is always preserved; only the
// interleaving BETWEEN roots is relaxed, and only under this option. A
// recording with any cross-root dataflow, a chained reference to an earlier
// flush, or a single root replays sequentially exactly as without the
// option. See DESIGN.md "Hot path".
func WithParallelRoots() Option {
	return func(b *Batch) { b.parallel = true }
}

// WithCache attaches a lease-backed result cache. Readonly calls recorded
// with Proxy.CallRO may then settle from the cache without reaching the
// wire, and their results fill it; every non-readonly call invalidates the
// entries of the root object it descends from. Share one cache across the
// batches of a client — sharing is what makes repeated reads cheap.
func WithCache(c *rcache.Cache) Option {
	return func(b *Batch) { b.cache = c }
}

// defaultPolicy is the shared AbortPolicy instance the common case uses;
// policies are immutable after construction, so sharing is safe and saves
// an allocation per batch.
var defaultPolicy = AbortPolicy()

// New creates a batch over the remote object root, the equivalent of
// BRMI.create(iface, remoteRef [, policy]) (§3.2, §3.3).
func New(peer *rmi.Peer, root wire.Ref, opts ...Option) *Batch {
	b := &Batch{
		peer:   peer,
		root:   root,
		policy: defaultPolicy,
	}
	if reg := peer.Stats(); reg != nil {
		b.reg = reg
		b.flushNs = reg.Histogram("core.flush_ns")
		b.acked = reg.Counter("core.calls_acked")
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// OnShip registers fn to observe the wire payload of every flush the server
// executed successfully, after results are distributed. The payload is the
// already-serialized batch command (wire-registered, deterministic to
// replay); the cluster layer forwards it verbatim to shard followers, which
// is what makes a batch the replication log entry. fn runs with the batch
// lock held and must not call back into the batch; the payload must be
// treated as immutable.
func (b *Batch) OnShip(fn func(req any, keep bool)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onShip = fn
}

// Root returns the proxy for the batch's root object.
func (b *Batch) Root() *Proxy {
	return &Proxy{b: b, seq: RootTarget, settled: true, root: true, chainRoot: b.root}
}

// AddRoot registers another exported remote object as an additional root of
// this batch and returns its recording proxy. The object must live on the
// same server as the batch's root: a batch is one round trip to one server.
// Adding the same ref twice returns a proxy for the same root. The cluster
// layer uses this to fold every call bound for one server into a single
// sub-batch regardless of how many objects the calls target.
func (b *Batch) AddRoot(ref wire.Ref) (*Proxy, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrBatchClosed
	}
	if ref.Endpoint != b.root.Endpoint {
		return nil, fmt.Errorf("%w: root %d lives on %q, batch targets %q",
			ErrForeignRoot, ref.ObjID, ref.Endpoint, b.root.Endpoint)
	}
	if ref == b.root {
		return &Proxy{b: b, seq: RootTarget, settled: true, root: true, chainRoot: ref}, nil
	}
	for i, r := range b.extra {
		if r == ref {
			return &Proxy{b: b, seq: extraRootSeq(i), settled: true, root: true, chainRoot: ref}, nil
		}
	}
	b.extra = append(b.extra, ref)
	return &Proxy{b: b, seq: extraRootSeq(len(b.extra) - 1), settled: true, root: true, chainRoot: ref}, nil
}

// extraRootSeq is the wire sequence number addressing extra root i
// (RootTarget-1, RootTarget-2, ...).
func extraRootSeq(i int) int64 { return RootTarget - 1 - int64(i) }

// Peer returns the underlying RMI peer.
func (b *Batch) Peer() *rmi.Peer { return b.peer }

// Session returns the server session id of the chain (0 when none is open).
func (b *Batch) Session() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.session
}

// PendingCalls returns the number of recorded, unflushed calls.
func (b *Batch) PendingCalls() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.calls)
}

// --- recording ---------------------------------------------------------------

// futureAlloc packs a Future and its state into one allocation; recording a
// value call costs a single heap object.
type futureAlloc struct {
	f  Future
	st futureState
}

func (b *Batch) recordValue(target *Proxy, method string, args []any, ro bool) *Future {
	b.mu.Lock()
	defer b.mu.Unlock()
	fa := &futureAlloc{}
	fa.f.st = &fa.st
	fa.st.b = b

	// A cacheable readonly call targets a root object with plain marshalable
	// arguments — the only shape whose result has an identity independent of
	// this batch's recording. Consult the lease cache before recording; a hit
	// returns an already-settled future and records nothing.
	var ckey, cobj string
	var cgen, cepoch uint64
	if ro && b.cache != nil && target.root && !b.closed && b.recErr == nil {
		if key, ok := rcache.Key(target.chainRoot, method, args); ok {
			if v, hit := b.cache.Get(key); hit {
				fa.st.settled = true
				fa.st.val = v
				return &fa.f
			}
			ckey = key
			cobj = rcache.ObjKey(target.chainRoot)
			cgen = b.cache.Gen(cobj)
			cepoch = b.cache.Epoch()
		}
	}

	seq, owner, ok := b.appendCall(target, method, kindValue, false, ro, args)
	if ok {
		fa.st.seq = seq
		fa.st.cursor = owner
		rec := callRecord{kind: kindValue, future: &fa.st, owner: owner}
		if owner == nil {
			rec.cacheKey, rec.cacheObj, rec.cacheGen, rec.cacheEpoch = ckey, cobj, cgen, cepoch
		}
		b.records = append(b.records, rec)
	}
	return &fa.f
}

func (b *Batch) recordRemote(target *Proxy, method string, export bool, args []any) *Proxy {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := &Proxy{b: b, chainRoot: target.chainRoot}
	seq, owner, ok := b.appendCall(target, method, kindRemote, export, false, args)
	if ok {
		if export && owner != nil {
			// Exports are per-call, cursor sub-batches are per-element; the
			// combination has no single ref to return. Ownership can come
			// from the target OR any argument, so check appendCall's verdict.
			b.fail(fmt.Errorf("brmi: CallBatchExport %s inside a cursor run", method))
			return p
		}
		p.seq = seq
		p.cursor = owner
		b.records = append(b.records, callRecord{kind: kindRemote, proxy: p, owner: owner})
	}
	return p
}

func (b *Batch) recordCursor(target *Proxy, method string, args []any) *Cursor {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := &Cursor{Proxy: Proxy{b: b, chainRoot: target.chainRoot}, pos: -1}
	if target.recordingOwner() != nil {
		b.fail(ErrNestedCursor)
		return c
	}
	seq, owner, ok := b.appendCall(target, method, kindCursor, false, false, args)
	if ok {
		if owner != nil {
			b.fail(ErrNestedCursor)
			return c
		}
		c.seq = seq
		c.Proxy.cursor = c // operations on the cursor belong to its own run
		b.records = append(b.records, callRecord{kind: kindCursor, proxy: &c.Proxy, cursor: c})
	}
	return c
}

// appendCall validates and stores one invocation. Caller holds b.mu.
// It returns the assigned sequence number, the owning cursor (nil if none),
// and whether recording succeeded (violations are sticky via b.recErr).
// ro marks the call declared //brmi:readonly; every other call invalidates
// the cache entries of the objects it may mutate.
func (b *Batch) appendCall(target *Proxy, method string, kind int64, export bool, ro bool, args []any) (int64, *Cursor, bool) {
	if b.closed {
		b.fail(ErrBatchClosed)
		return 0, nil, false
	}
	if b.recErr != nil {
		return 0, nil, false
	}
	if target.b != b {
		b.fail(fmt.Errorf("%w: call %s", ErrForeignProxy, method))
		return 0, nil, false
	}

	// Establish the owning cursor: the target's (if recording) or any
	// argument proxy's ("any operation that uses the cursor as a target or
	// argument is repeated for each array element", §3.4).
	owner := target.recordingOwner()
	for _, a := range args {
		ap := argProxy(a)
		if ap == nil {
			continue
		}
		if ap.b != b {
			b.fail(fmt.Errorf("%w: argument of %s", ErrForeignProxy, method))
			return 0, nil, false
		}
		if ao := ap.recordingOwner(); ao != nil {
			if owner == nil {
				owner = ao
			} else if owner != ao {
				b.fail(fmt.Errorf("%w: arguments of %s span two cursors", ErrCursorInterleaved, method))
				return 0, nil, false
			}
		}
	}

	// Contiguity: once another call interrupts a cursor's run, the run is
	// closed and further operations on that cursor are an error (§4.1).
	if owner != nil && owner.runClosed {
		b.fail(fmt.Errorf("%w: %s recorded after the cursor's run ended", ErrCursorInterleaved, method))
		return 0, nil, false
	}
	if b.lastOwner != nil && b.lastOwner != owner {
		b.lastOwner.runClosed = true
	}
	b.lastOwner = owner

	targetSeq, err := target.currentSeq()
	if err != nil {
		b.fail(fmt.Errorf("brmi: target of %s: %w", method, err))
		return 0, nil, false
	}

	inv := invocationData{
		Seq:    b.nextSeq,
		Target: targetSeq,
		Method: method,
		Kind:   kind,
		Export: export,
	}
	if owner != nil {
		inv.setOwner(owner.seq)
	}
	inv.Args = b.argAlloc(len(args))
	for i, a := range args {
		if ap := argProxy(a); ap != nil {
			seq, err := ap.currentSeq()
			if err != nil {
				b.fail(fmt.Errorf("brmi: argument %d of %s: %w", i, method, err))
				return 0, nil, false
			}
			inv.Args[i] = batchArg{IsRef: true, Seq: seq}
			continue
		}
		w, err := b.peer.ToWire(a)
		if err != nil {
			b.fail(fmt.Errorf("brmi: argument %d of %s: %w", i, method, err))
			return 0, nil, false
		}
		inv.Args[i] = batchArg{Val: w}
	}

	// A recorded non-readonly call is a potential write: drop the cached
	// leases of every root object it can reach — the call chain's root and
	// the chain roots of proxy arguments. This happens at record time, not
	// flush time, so a readonly call recorded after the write in program
	// order can never serve the pre-write value.
	if !ro && b.cache != nil {
		if !target.chainRoot.IsZero() {
			b.cache.InvalidateObject(rcache.ObjKey(target.chainRoot))
		}
		for _, a := range args {
			if ap := argProxy(a); ap != nil && !ap.chainRoot.IsZero() {
				b.cache.InvalidateObject(rcache.ObjKey(ap.chainRoot))
			}
		}
	}

	b.calls = append(b.calls, inv)
	seq := b.nextSeq
	b.nextSeq++
	return seq, owner, true
}

// argAlloc carves an n-element Args slice out of the batch's arena chunk,
// so recording a call does not allocate per-call argument slices. Chunks
// fill up and are replaced (never grown in place), keeping every
// previously handed-out slice valid. Full-capacity slicing prevents append
// bleed between calls. Caller holds b.mu.
func (b *Batch) argAlloc(n int) []batchArg {
	if n == 0 {
		return nil
	}
	if len(b.argArena)+n > cap(b.argArena) {
		size := 64
		if n > size {
			size = n
		}
		b.argArena = make([]batchArg, 0, size)
	}
	base := len(b.argArena)
	b.argArena = b.argArena[:base+n]
	return b.argArena[base : base+n : base+n]
}

// argProxy extracts the *Proxy behind an argument, unwrapping cursors and
// generated typed stubs (which implement ProxyHolder).
func argProxy(a any) *Proxy {
	switch x := a.(type) {
	case *Proxy:
		return x
	case *Cursor:
		return &x.Proxy
	case ProxyHolder:
		return x.BatchProxy()
	default:
		return nil
	}
}

// ProxyHolder is implemented by generated typed batch stubs so they can be
// passed as arguments to recorded calls.
type ProxyHolder interface {
	BatchProxy() *Proxy
}

// fail records a sticky recording violation. Caller holds b.mu.
func (b *Batch) fail(err error) {
	if b.recErr == nil {
		b.recErr = err
	}
}

// --- flushing ----------------------------------------------------------------

// Flush sends the recorded batch to the server for execution and closes the
// chain: the server session (if any) is released (§3.2).
func (b *Batch) Flush(ctx context.Context) error {
	return b.flush(ctx, false)
}

// FlushAndContinue sends the recorded batch and keeps the server context so
// a chained batch can use earlier results (§3.5).
func (b *Batch) FlushAndContinue(ctx context.Context) error {
	return b.flush(ctx, true)
}

func (b *Batch) flush(ctx context.Context, keep bool) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBatchClosed
	}
	if b.recErr != nil {
		err := &BatchError{Err: b.recErr}
		b.failure = err
		b.closed = true
		b.mu.Unlock()
		return err
	}
	// An empty terminal flush has nothing to tell the server: no recorded
	// calls, no session to release, no session to open. Skip the wire — this
	// is what lets a batch whose every readonly call hit the lease cache
	// complete in zero round trips.
	if len(b.calls) == 0 && b.session == 0 && !keep {
		b.closed = true
		b.mu.Unlock()
		return nil
	}
	req := &batchRequest{
		Session:     b.session,
		Root:        b.root.ObjID,
		KeepSession: keep,
		Parallel:    b.parallel,
		Calls:       b.calls,
	}
	if len(b.extra) > 0 {
		req.Roots = make([]uint64, len(b.extra))
		for i, r := range b.extra {
			req.Roots[i] = r.ObjID
		}
	}
	if !b.sentPol && b.policy != defaultPolicy {
		// The server assumes AbortPolicy when no policy travels; the shared
		// default never needs encoding.
		req.Policy = b.policy
	}
	records := b.records
	base := b.recBase
	b.calls = nil
	b.records = nil
	b.argArena = nil // chunks stay alive through req until encoded
	b.recBase = b.nextSeq
	b.lastOwner = nil
	b.mu.Unlock()

	svcRef := rmi.SystemRef(b.root.Endpoint, rmi.BatchObjID, rmi.BatchIface)
	var flushStart time.Time
	if b.reg != nil {
		flushStart = b.reg.Now()
	}
	res, err := b.peer.Call(ctx, svcRef, "InvokeBatch", req)
	if b.reg != nil {
		b.flushNs.Observe(b.reg.Now().Sub(flushStart).Nanoseconds())
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil {
		var nso *rmi.NoSuchObjectError
		if errors.As(err, &nso) && nso.ObjID == rmi.BatchObjID {
			err = ErrNoBatchService
		}
		ferr := &BatchError{Err: err}
		b.failure = ferr
		b.closed = true
		return ferr
	}
	resp, ok := res[0].(*batchResponse)
	if !ok {
		ferr := &BatchError{Err: fmt.Errorf("unexpected response type %T", res[0])}
		b.failure = ferr
		b.closed = true
		return ferr
	}

	b.sentPol = true
	b.session = resp.Session
	b.distribute(base, records, resp)
	if b.onShip != nil && len(req.Calls) > 0 {
		b.onShip(req, keep)
	}
	if !keep {
		b.closed = true
	}
	return nil
}

// ReleaseSession closes a chained-batch session left open on endpoint
// without executing any calls: an empty, non-keeping flush against the
// session. The cluster executor uses it to reap sessions orphaned by a
// destination that failed mid-pipeline — without it they would linger
// server-side until the session TTL. Releasing an unknown or expired
// session reports SessionExpiredError.
func ReleaseSession(ctx context.Context, peer *rmi.Peer, endpoint string, session uint64) error {
	if session == 0 {
		return nil
	}
	req := &batchRequest{Session: session}
	svcRef := rmi.SystemRef(endpoint, rmi.BatchObjID, rmi.BatchIface)
	_, err := peer.Call(ctx, svcRef, "InvokeBatch", req)
	return err
}

// distribute assigns results to futures, proxies, and cursors (§4.3).
// records[i] belongs to the call with sequence number base+i. Caller holds
// b.mu.
func (b *Batch) distribute(base int64, records []callRecord, resp *batchResponse) {
	var executed uint64
	for i := range resp.Results {
		r := &resp.Results[i]
		if !r.Skipped {
			// The server executed this call (skipped results never reached
			// method execution); the count mirrors the server-side
			// core.calls_executed counter for the chaos cross-check.
			executed++
		}
		idx := r.Seq - base
		if idx < 0 || idx >= int64(len(records)) {
			continue // response for a call we did not record; ignore
		}
		rec := &records[idx]
		switch rec.kind {
		case kindValue:
			st := rec.future
			st.settled = true
			if rec.owner != nil {
				st.block = r.Block
				st.blockErrs = r.BlockErrs
			} else {
				st.err = r.Err
				if st.err == nil {
					st.val = b.peer.FromWire(r.Value)
					if rec.cacheKey != "" {
						// Fill the readonly miss; Put drops the fill if the
						// object's generation or the ring epoch moved since
						// recording (stale-fill guard).
						b.cache.Put(rec.cacheKey, rec.cacheObj, st.val, rec.cacheGen, rec.cacheEpoch)
					}
				}
			}
		case kindRemote:
			p := rec.proxy
			p.settled = true
			p.failed = r.Err
			p.exportRef = r.Ref
			if rec.owner != nil {
				p.base = r.Base
			}
		case kindCursor:
			c := rec.cursor
			c.settled = true
			c.flushed = true
			c.failed = r.Err
			c.count = r.Count
			c.base = r.Base
			c.pos = -1
		}
	}
	b.acked.Add(executed)
}
