package registry_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
)

func silentLogf(string, ...any) {}

type greeter struct {
	rmi.RemoteBase
}

func (g *greeter) Greet(name string) string { return "hello " + name }

func setup(t *testing.T) (server, client *rmi.Peer) {
	t.Helper()
	network := netsim.New(netsim.Instant)
	t.Cleanup(func() { _ = network.Close() })
	server = rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	if err := server.Serve("srv"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	if _, err := registry.Start(server); err != nil {
		t.Fatal(err)
	}
	client = rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	t.Cleanup(func() { _ = client.Close() })
	return server, client
}

func TestBindLookupInvoke(t *testing.T) {
	server, client := setup(t)
	ref, err := server.Export(&greeter{}, "test.Greeter")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := registry.Bind(ctx, client, "srv", "greeter", ref); err != nil {
		t.Fatal(err)
	}
	got, err := registry.Lookup(ctx, client, "srv", "greeter")
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("lookup = %v, want %v", got, ref)
	}
	// The looked-up reference is callable.
	res, err := client.Call(ctx, got, "Greet", "world")
	if err != nil || res[0].(string) != "hello world" {
		t.Fatalf("call through looked-up ref: %v %#v", err, res)
	}
}

func TestBindDuplicateFails(t *testing.T) {
	server, client := setup(t)
	ref, _ := server.Export(&greeter{}, "test.Greeter")
	ctx := context.Background()
	if err := registry.Bind(ctx, client, "srv", "g", ref); err != nil {
		t.Fatal(err)
	}
	err := registry.Bind(ctx, client, "srv", "g", ref)
	var abe *registry.AlreadyBoundError
	if !errors.As(err, &abe) || abe.Name != "g" {
		t.Fatalf("got %v, want AlreadyBoundError{g}", err)
	}
}

func TestRebindReplaces(t *testing.T) {
	server, client := setup(t)
	g1 := &greeter{}
	g2 := &greeter{}
	ref1, _ := server.Export(g1, "test.Greeter")
	ref2, _ := server.Export(g2, "test.Greeter")
	ctx := context.Background()
	if err := registry.Bind(ctx, client, "srv", "g", ref1); err != nil {
		t.Fatal(err)
	}
	if err := registry.Rebind(ctx, client, "srv", "g", ref2); err != nil {
		t.Fatal(err)
	}
	got, err := registry.Lookup(ctx, client, "srv", "g")
	if err != nil || got != ref2 {
		t.Fatalf("got %v %v, want %v", err, got, ref2)
	}
}

func TestLookupUnknown(t *testing.T) {
	_, client := setup(t)
	_, err := registry.Lookup(context.Background(), client, "srv", "ghost")
	var nbe *registry.NotBoundError
	if !errors.As(err, &nbe) || nbe.Name != "ghost" {
		t.Fatalf("got %v, want NotBoundError{ghost}", err)
	}
}

func TestUnbind(t *testing.T) {
	server, client := setup(t)
	ref, _ := server.Export(&greeter{}, "test.Greeter")
	ctx := context.Background()
	if err := registry.Bind(ctx, client, "srv", "g", ref); err != nil {
		t.Fatal(err)
	}
	if err := registry.Unbind(ctx, client, "srv", "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.Lookup(ctx, client, "srv", "g"); err == nil {
		t.Fatal("lookup after unbind succeeded")
	}
	err := registry.Unbind(ctx, client, "srv", "g")
	var nbe *registry.NotBoundError
	if !errors.As(err, &nbe) {
		t.Fatalf("double unbind: got %v, want NotBoundError", err)
	}
}

func TestListSorted(t *testing.T) {
	server, client := setup(t)
	ref, _ := server.Export(&greeter{}, "test.Greeter")
	ctx := context.Background()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := registry.Bind(ctx, client, "srv", n, ref); err != nil {
			t.Fatal(err)
		}
	}
	names, err := registry.List(ctx, client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("got %v, want %v", names, want)
	}
}

func TestListEmpty(t *testing.T) {
	_, client := setup(t)
	names, err := registry.List(context.Background(), client, "srv")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("got %v", names)
	}
}

func TestLookupAgainstNoRegistry(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	if err := server.Serve("bare"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	defer client.Close()
	_, err := registry.Lookup(context.Background(), client, "bare", "x")
	var nso *rmi.NoSuchObjectError
	if !errors.As(err, &nso) {
		t.Fatalf("got %v, want NoSuchObjectError", err)
	}
}
