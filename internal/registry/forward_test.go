package registry_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
)

// TestForwardedNameWrongHome exercises the naming side of live re-sharding:
// a forwarded (migrated) name fails lookups with the typed wrong-home error
// until a new binding supersedes the marker.
func TestForwardedNameWrongHome(t *testing.T) {
	network := netsim.New(netsim.Instant)
	t.Cleanup(func() { _ = network.Close() })
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	if err := server.Serve("srv"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	svc, err := registry.Start(server)
	if err != nil {
		t.Fatal(err)
	}
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()

	ref, err := server.Export(&greeter{}, "test.Greeter")
	if err != nil {
		t.Fatal(err)
	}
	if err := registry.Bind(ctx, client, "srv", "greet", ref); err != nil {
		t.Fatal(err)
	}

	svc.Forward("greet", 5)

	_, err = registry.Lookup(ctx, client, "srv", "greet")
	var wrong *rmi.WrongHomeError
	if !errors.As(err, &wrong) {
		t.Fatalf("lookup after forward: error = %T %v, want *WrongHomeError", err, err)
	}
	if wrong.Key != "greet" || wrong.NewEpoch != 5 {
		t.Errorf("WrongHomeError = %+v, want key greet epoch 5", wrong)
	}

	// An unknown name is still NotBound, not wrong-home.
	var nb *registry.NotBoundError
	if _, err := registry.Lookup(ctx, client, "srv", "nobody"); !errors.As(err, &nb) {
		t.Errorf("unknown name error = %v, want NotBoundError", err)
	}

	// A fresh binding supersedes the forward marker.
	if err := registry.Rebind(ctx, client, "srv", "greet", ref); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.Lookup(ctx, client, "srv", "greet"); err != nil {
		t.Errorf("lookup after rebind: %v", err)
	}

	// Forward also shows in the snapshot as absence.
	if _, ok := svc.Snapshot()["greet"]; !ok {
		t.Errorf("rebind did not restore the binding in the snapshot")
	}
}
