// Package registry implements the naming service that plays the role of the
// RMI Registry (paper §2): a well-known remote object that maps names to
// remote references so clients can bootstrap their first stub.
//
// The registry is itself an ordinary remote object served by internal/rmi at
// the reserved object id rmi.RegistryObjID, so "looking up the registry" and
// "calling a remote object" are the same mechanism — exactly as in Java RMI.
package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rmi"
	"repro/internal/wire"
)

// AlreadyBoundError reports a Bind against a name that is taken.
type AlreadyBoundError struct {
	Name string
}

func (e *AlreadyBoundError) Error() string {
	return fmt.Sprintf("registry: name %q already bound", e.Name)
}

// NotBoundError reports a Lookup or Unbind against an unknown name.
type NotBoundError struct {
	Name string
}

func (e *NotBoundError) Error() string {
	return fmt.Sprintf("registry: name %q not bound", e.Name)
}

func init() {
	wire.MustRegisterError("registry.AlreadyBound", &AlreadyBoundError{})
	wire.MustRegisterError("registry.NotBound", &NotBoundError{})
}

// Service is the registry remote object. Its exported methods form the
// remote interface: Bind, Rebind, Lookup, Unbind, List.
type Service struct {
	rmi.RemoteBase

	mu       sync.Mutex
	bindings map[string]wire.Ref
	// refCount indexes bindings by reference, maintained on every mutation,
	// so "is this ref still bound under some name" is O(1) — the cluster
	// node asks per departing name during a migration.
	refCount map[wire.Ref]int
	// forwards remembers names migrated to another home server when the
	// cluster membership changed, keyed to the epoch of the move. Lookups of
	// a forwarded name fail with rmi.WrongHomeError instead of NotBound, so
	// a stale client knows to refresh its shard map and re-route. Markers
	// expire after rmi.ForwardTTL, like export tombstones, bounding the
	// memory a long-lived registry spends on re-sharding history.
	forwards map[string]forwardMark
}

// forwardMark is one migrated name's redirect: the epoch of the move and
// when the marker was installed.
type forwardMark struct {
	epoch uint64
	at    time.Time
}

// Start exports a fresh registry service on p at the reserved registry id.
func Start(p *rmi.Peer) (*Service, error) {
	s := &Service{
		bindings: make(map[string]wire.Ref),
		refCount: make(map[wire.Ref]int),
		forwards: make(map[string]forwardMark),
	}
	if _, err := p.ExportSystem(rmi.RegistryObjID, s, rmi.RegistryIface); err != nil {
		return nil, fmt.Errorf("registry: start: %w", err)
	}
	return s, nil
}

// Bind associates name with ref; it fails if name is taken.
func (s *Service) Bind(name string, ref wire.Ref) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bindings[name]; ok {
		return &AlreadyBoundError{Name: name}
	}
	delete(s.forwards, name)
	s.setLocked(name, ref)
	return nil
}

// Rebind associates name with ref, replacing any existing binding.
func (s *Service) Rebind(name string, ref wire.Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.forwards, name)
	s.setLocked(name, ref)
}

// setLocked installs name -> ref, keeping the reverse index in step.
// Caller holds s.mu.
func (s *Service) setLocked(name string, ref wire.Ref) {
	s.dropLocked(name)
	s.bindings[name] = ref
	s.refCount[ref]++
}

// dropLocked removes name's binding, if any, keeping the reverse index in
// step. Caller holds s.mu.
func (s *Service) dropLocked(name string) {
	old, ok := s.bindings[name]
	if !ok {
		return
	}
	delete(s.bindings, name)
	if s.refCount[old] <= 1 {
		delete(s.refCount, old)
	} else {
		s.refCount[old]--
	}
}

// Bound reports whether any name is currently bound to ref.
func (s *Service) Bound(ref wire.Ref) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refCount[ref] > 0
}

// Lookup resolves name to its bound reference. A name migrated away by the
// cluster rebalancer fails with rmi.WrongHomeError carrying the epoch of the
// move.
func (s *Service) Lookup(name string) (wire.Ref, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.bindings[name]
	if !ok {
		if mark, moved := s.forwards[name]; moved && time.Since(mark.at) <= rmi.ForwardTTL {
			return wire.Ref{}, &rmi.WrongHomeError{Key: name, NewEpoch: mark.epoch}
		}
		return wire.Ref{}, &NotBoundError{Name: name}
	}
	return ref, nil
}

// Forward removes name's binding and marks it migrated at epoch: subsequent
// Lookups fail with rmi.WrongHomeError until a new Bind/Rebind supersedes
// the marker or it expires (rmi.ForwardTTL). The cluster rebalancer calls
// it on the old home when a membership change moves the name elsewhere.
func (s *Service) Forward(name string, epoch uint64) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for n, mark := range s.forwards {
		if now.Sub(mark.at) > rmi.ForwardTTL {
			delete(s.forwards, n)
		}
	}
	s.dropLocked(name)
	s.forwards[name] = forwardMark{epoch: epoch, at: now}
}

// Unbind removes name's binding.
func (s *Service) Unbind(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bindings[name]; !ok {
		return &NotBoundError{Name: name}
	}
	s.dropLocked(name)
	return nil
}

// Snapshot returns a copy of the current name table. The cluster node
// service reads it to report this server's bindings in one round trip.
func (s *Service) Snapshot() map[string]wire.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]wire.Ref, len(s.bindings))
	for name, ref := range s.bindings {
		out[name] = ref
	}
	return out
}

// List returns all bound names, sorted.
func (s *Service) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.bindings))
	for n := range s.bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- client helpers ---------------------------------------------------------

func registryRef(endpoint string) wire.Ref {
	return rmi.SystemRef(endpoint, rmi.RegistryObjID, rmi.RegistryIface)
}

// Lookup resolves name at the registry running on endpoint, via p.
// It returns the raw reference; use p.Deref or p.DerefTyped to obtain a
// stub (this mirrors Naming.lookup returning a stub).
func Lookup(ctx context.Context, p *rmi.Peer, endpoint, name string) (wire.Ref, error) {
	res, err := p.Call(ctx, registryRef(endpoint), "Lookup", name)
	if err != nil {
		return wire.Ref{}, err
	}
	return refFromResult(res)
}

// Bind binds name to ref at the registry on endpoint.
func Bind(ctx context.Context, p *rmi.Peer, endpoint, name string, ref wire.Ref) error {
	_, err := p.Call(ctx, registryRef(endpoint), "Bind", name, ref)
	return err
}

// Rebind binds name to ref at the registry on endpoint, replacing any
// existing binding.
func Rebind(ctx context.Context, p *rmi.Peer, endpoint, name string, ref wire.Ref) error {
	_, err := p.Call(ctx, registryRef(endpoint), "Rebind", name, ref)
	return err
}

// Unbind removes name at the registry on endpoint.
func Unbind(ctx context.Context, p *rmi.Peer, endpoint, name string) error {
	_, err := p.Call(ctx, registryRef(endpoint), "Unbind", name)
	return err
}

// List returns the names bound at the registry on endpoint.
func List(ctx context.Context, p *rmi.Peer, endpoint string) ([]string, error) {
	res, err := p.Call(ctx, registryRef(endpoint), "List")
	if err != nil {
		return nil, err
	}
	if len(res) == 0 || res[0] == nil {
		return nil, nil
	}
	generic, ok := res[0].([]any)
	if !ok {
		return nil, fmt.Errorf("registry: unexpected List result %T", res[0])
	}
	names := make([]string, 0, len(generic))
	for _, v := range generic {
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("registry: unexpected List element %T", v)
		}
		names = append(names, s)
	}
	return names, nil
}

// refFromResult unwraps a reference from a call result, which arrives as a
// stub (the client runtime turns refs into stubs on arrival).
func refFromResult(res []any) (wire.Ref, error) {
	if len(res) != 1 {
		return wire.Ref{}, fmt.Errorf("registry: unexpected result arity %d", len(res))
	}
	switch v := res[0].(type) {
	case rmi.RefHolder:
		return v.Ref(), nil
	case wire.Ref:
		return v, nil
	default:
		return wire.Ref{}, fmt.Errorf("registry: unexpected result type %T", v)
	}
}
