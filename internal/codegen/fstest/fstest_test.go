package fstest_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/codegen/fstest"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/wire"
)

func silentLogf(string, ...any) {}

// --- server implementation ---------------------------------------------------

type lockedError struct {
	Name string
}

func (e *lockedError) Error() string { return "locked: " + e.Name }

type fileImpl struct {
	rmi.RemoteBase
	dir    *dirImpl
	name   string
	size   int
	date   time.Time
	locked bool
}

func (f *fileImpl) GetName() (string, error) { return f.name, nil }

func (f *fileImpl) GetSize() (int, error) {
	if f.locked {
		return 0, &lockedError{Name: f.name}
	}
	return f.size, nil
}

func (f *fileImpl) GetDate() (time.Time, error) { return f.date, nil }

func (f *fileImpl) Delete() error {
	f.dir.remove(f.name)
	return nil
}

// DispatchLocal opts the file into the reflection-free skeleton path, via
// the brmigen-generated helper.
func (f *fileImpl) DispatchLocal(ctx context.Context, method string, args []any, buf []any) ([]any, bool, error) {
	return fstest.DispatchFile(f, ctx, method, args, buf)
}

type dirImpl struct {
	rmi.RemoteBase
	mu    sync.Mutex
	files []*fileImpl
}

func (d *dirImpl) GetFile(name string) (fstest.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		if f.name == name {
			return f, nil
		}
	}
	return nil, &wire.RemoteError{TypeName: "fstest.NotFound", Message: "no file " + name}
}

func (d *dirImpl) AllFiles() ([]fstest.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]fstest.File, len(d.files))
	for i, f := range d.files {
		out[i] = f
	}
	return out, nil
}

func (d *dirImpl) TotalSize() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, f := range d.files {
		n += int64(f.size)
	}
	return n, nil
}

// DispatchLocal opts the directory into the reflection-free skeleton path.
func (d *dirImpl) DispatchLocal(ctx context.Context, method string, args []any, buf []any) ([]any, bool, error) {
	return fstest.DispatchDirectory(d, ctx, method, args, buf)
}

func (d *dirImpl) remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, f := range d.files {
		if f.name == name {
			d.files = append(d.files[:i], d.files[i+1:]...)
			return
		}
	}
}

var (
	_ fstest.Directory = (*dirImpl)(nil)
	_ fstest.File      = (*fileImpl)(nil)
)

func init() {
	wire.MustRegisterError("fstest.Locked", &lockedError{})
	fstest.RegisterDirectoryImpl(&dirImpl{})
	fstest.RegisterFileImpl(&fileImpl{})
}

// --- fixture ------------------------------------------------------------------

func setup(t *testing.T) (client *rmi.Peer, dirRef wire.Ref, dir *dirImpl) {
	t.Helper()
	network := netsim.New(netsim.Instant)
	t.Cleanup(func() { _ = network.Close() })
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	if err := server.Serve("fs"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	exec, err := core.Install(server)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Stop)
	if _, err := registry.Start(server); err != nil {
		t.Fatal(err)
	}

	dir = &dirImpl{}
	when := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	for i, spec := range []struct {
		name   string
		size   int
		locked bool
	}{
		{"a.txt", 10, false}, {"b.txt", 20, false}, {"c.bin", 30, true},
	} {
		dir.files = append(dir.files, &fileImpl{
			dir: dir, name: spec.name, size: spec.size,
			date: when.AddDate(0, 0, i), locked: spec.locked,
		})
	}
	ref, err := server.Export(dir, fstest.DirectoryIfaceName)
	if err != nil {
		t.Fatal(err)
	}
	if err := registry.Bind(context.Background(), server, "fs", "dir", ref); err != nil {
		t.Fatal(err)
	}

	client = rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	t.Cleanup(func() { _ = client.Close() })
	return client, ref, dir
}

// --- tests ---------------------------------------------------------------------

// TestTypedRMIStubs drives the generated plain-RMI stubs: one network round
// trip per call, stubs arriving as the right generated types.
func TestTypedRMIStubs(t *testing.T) {
	client, dirRef, _ := setup(t)
	ctx := context.Background()

	// Look up via the registry, as an application would.
	ref, err := registry.Lookup(ctx, client, "fs", "dir")
	if err != nil {
		t.Fatal(err)
	}
	dirStub, ok := client.DerefTyped(ref).(*fstest.DirectoryStub)
	if !ok {
		t.Fatalf("DerefTyped returned %T", client.DerefTyped(ref))
	}
	if dirStub.Ref() != dirRef {
		t.Fatalf("stub ref %v, want %v", dirStub.Ref(), dirRef)
	}

	f, err := dirStub.GetFile("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*fstest.FileStub); !ok {
		t.Fatalf("GetFile returned %T, want *fstest.FileStub", f)
	}
	name, err := f.GetName()
	if err != nil || name != "a.txt" {
		t.Fatalf("GetName: %v %q", err, name)
	}
	size, err := f.GetSize()
	if err != nil || size != 10 {
		t.Fatalf("GetSize: %v %d", err, size)
	}

	files, err := dirStub.AllFiles()
	if err != nil || len(files) != 3 {
		t.Fatalf("AllFiles: %v %d", err, len(files))
	}
	total, err := dirStub.TotalSize()
	if err != nil || total != 60 {
		t.Fatalf("TotalSize: %v %d", err, total)
	}

	// Typed errors pass through the stub.
	locked, err := dirStub.GetFile("c.bin")
	if err != nil {
		t.Fatal(err)
	}
	_, err = locked.GetSize()
	var le *lockedError
	if !errors.As(err, &le) || le.Name != "c.bin" {
		t.Fatalf("got %v, want lockedError{c.bin}", err)
	}
}

// TestTypedBatch reproduces the paper's §3.2 example with generated typed
// batch interfaces.
func TestTypedBatch(t *testing.T) {
	client, dirRef, _ := setup(t)
	ctx := context.Background()

	before := client.CallCount()
	bdir, batch := fstest.NewBatchDirectory(client, dirRef)
	bfile := bdir.GetFile("b.txt")
	name := bfile.GetName()
	size := bfile.GetSize()
	total := bdir.TotalSize()
	if err := bdir.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := client.CallCount() - before; got != 1 {
		t.Fatalf("typed batch used %d round trips, want 1", got)
	}
	if batch.Session() != 0 {
		t.Fatal("flush left a session open")
	}

	if v, err := name.Get(); err != nil || v != "b.txt" {
		t.Fatalf("name: %v %q", err, v)
	}
	if v, err := size.Get(); err != nil || v != 20 {
		t.Fatalf("size: %v %d", err, v)
	}
	if v, err := total.Get(); err != nil || v != 60 {
		t.Fatalf("total: %v %d", err, v)
	}
}

// TestTypedCursor reproduces the file-listing case study (§5.1) with the
// generated CFile cursor.
func TestTypedCursor(t *testing.T) {
	client, dirRef, _ := setup(t)
	ctx := context.Background()

	bdir, _ := fstest.NewBatchDirectory(client, dirRef, core.WithPolicy(core.ContinuePolicy()))
	cursor := bdir.AllFiles()
	name := cursor.GetName()
	size := cursor.GetSize()
	if err := bdir.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	n, err := cursor.Len()
	if err != nil || n != 3 {
		t.Fatalf("len: %v %d", err, n)
	}
	var names []string
	errCount := 0
	for cursor.Next() {
		v, err := name.Get()
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, v)
		if _, err := size.Get(); err != nil {
			var le *lockedError
			if !errors.As(err, &le) {
				t.Fatalf("size error: %v", err)
			}
			errCount++
		}
	}
	if len(names) != 3 || names[0] != "a.txt" || errCount != 1 {
		t.Fatalf("names=%v errCount=%d", names, errCount)
	}
}

// TestTypedChainedBatch reproduces the delete-older-than example (§3.5)
// with generated types.
func TestTypedChainedBatch(t *testing.T) {
	client, dirRef, dir := setup(t)
	ctx := context.Background()
	cutoff := time.Date(2009, 6, 23, 0, 0, 0, 0, time.UTC) // keeps b.txt (22+1) out? b=23 → not before; only a.txt deleted

	bdir, _ := fstest.NewBatchDirectory(client, dirRef)
	cursor := bdir.AllFiles()
	date := cursor.GetDate()
	if err := bdir.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	for cursor.Next() {
		d, err := date.Get()
		if err != nil {
			t.Fatal(err)
		}
		if d.Before(cutoff) {
			_ = cursor.Delete()
		}
	}
	if err := bdir.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	dir.mu.Lock()
	remaining := len(dir.files)
	first := dir.files[0].name
	dir.mu.Unlock()
	if remaining != 2 || first != "b.txt" {
		t.Fatalf("remaining=%d first=%q, want 2/b.txt", remaining, first)
	}
}

// TestTypedStubAsBatchRoot: a generated RMI stub's ref can seed a batch,
// mirroring BRMI.create(Naming.lookup(...)).
func TestTypedStubAsBatchRoot(t *testing.T) {
	client, _, _ := setup(t)
	ctx := context.Background()
	ref, err := registry.Lookup(ctx, client, "fs", "dir")
	if err != nil {
		t.Fatal(err)
	}
	stub := fstest.NewDirectoryStub(client.Deref(ref))
	bdir, _ := fstest.NewBatchDirectory(client, stub.Ref())
	total := bdir.TotalSize()
	if err := bdir.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := total.Get(); err != nil || v != 60 {
		t.Fatalf("total: %v %d", err, v)
	}
}
