// Package fstest declares the remote file-system interfaces from the
// paper's running example (§3.1) and serves as the codegen fixture: the
// generated brmi_gen.go next to this file is golden output that must stay
// in sync with the generator (see codegen tests) and compile as part of the
// module.
package fstest

import "time"

// Directory is a remote directory, as in the paper's running example.
//
//brmi:remote
type Directory interface {
	// GetFile resolves one file by name.
	GetFile(name string) (File, error)
	// AllFiles lists the directory.
	AllFiles() ([]File, error)
	// TotalSize sums the file sizes. It is declared readonly, so batch
	// layers may serve and coalesce it from the lease cache.
	//
	//brmi:readonly
	TotalSize() (int64, error)
}

// File is a remote file. It is not annotated: the generator includes it
// transitively from Directory's signatures.
type File interface {
	GetName() (string, error)
	//brmi:readonly
	GetSize() (int, error)
	GetDate() (time.Time, error)
	Delete() error
}
