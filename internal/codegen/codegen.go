// Package codegen generates typed batch interfaces and RMI client stubs from
// Go remote interface declarations. It is the equivalent of the paper's
// batch-interface tool ("invoked by using the -batch command line switch to
// rmic", §4): Go has no dynamic proxies, so the typed layer the JVM builds
// at runtime is emitted as source instead.
//
// Input: a package directory containing interface declarations annotated
// with a "//brmi:remote" comment (or all interfaces with the All option).
// For each remote interface X the generator emits, per the paper's
// translation rules (§3.2, §3.4):
//
//   - XStub        — RMI client stub implementing X over rmi.Invoker
//   - BX           — batch interface: value results become futures, remote
//     results become batch interfaces
//   - CX           — cursor interface for []X results
//   - registration — stub factory and interface-name constants
//
// Generation is transitive: interfaces referenced from a remote interface's
// signatures are generated too, so batch interfaces only ever reference
// batch interfaces.
package codegen

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/brmimark"
)

// Iface is a parsed remote interface.
type Iface struct {
	Name    string
	Doc     string
	Methods []Method
}

// Method is one remote method of an interface.
type Method struct {
	Name   string
	HasCtx bool    // first parameter is context.Context
	Params []Param // excluding ctx
	Result *TypeRef
	HasErr bool
	// ReadOnly marks a //brmi:readonly method: declared idempotent and
	// side-effect free, so its batch-interface method records with CallRO
	// and the result is cacheable under a lease. Parse-time validation
	// guarantees a serializable value result and value-only parameters.
	ReadOnly bool
}

// Param is a method parameter.
type Param struct {
	Name string
	Type TypeRef
}

// TypeKind classifies a signature type for the translation rules.
type TypeKind int

// Type kinds.
const (
	KindValue       TypeKind = iota + 1 // serializable value: future
	KindRemote                          // remote interface: batch interface
	KindRemoteSlice                     // slice of remote: cursor
)

// TypeRef is a rendered type with its translation classification.
type TypeRef struct {
	Kind TypeKind
	// Src is the type as written in the source (e.g. "time.Time", "File",
	// "[]File").
	Src string
	// Iface is the remote interface name for KindRemote/KindRemoteSlice.
	Iface string
}

// Package is the parse result.
type Package struct {
	Name    string
	Ifaces  []Iface
	Imports map[string]string // import path -> local name ("" if default)
}

// marker is the annotation selecting interfaces for generation. The string
// itself lives in internal/brmimark, shared with the brmivet analyzers so
// generator and checkers can never disagree on the spelling.
const marker = brmimark.Remote

// markerReadonly is the per-method annotation declaring a method idempotent
// and cacheable (see Method.ReadOnly). Shared via internal/brmimark.
const markerReadonly = brmimark.Readonly

// ParseDir parses the Go package in dir and extracts remote interfaces.
// When all is false, only interfaces annotated with //brmi:remote are roots;
// interfaces they reference are included transitively.
func ParseDir(dir string, all bool) (*Package, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("codegen: parse %s: %w", dir, err)
	}
	var files []*ast.File
	pkgName := ""
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		if pkgName != "" {
			return nil, fmt.Errorf("codegen: multiple packages in %s: %s and %s", dir, pkgName, name)
		}
		pkgName = name
		fileNames := make([]string, 0, len(pkgs[name].Files))
		for fn := range pkgs[name].Files {
			fileNames = append(fileNames, fn)
		}
		sort.Strings(fileNames)
		for _, fn := range fileNames {
			files = append(files, pkgs[name].Files[fn])
		}
	}
	if pkgName == "" {
		return nil, fmt.Errorf("codegen: no Go package in %s", dir)
	}
	return parseFiles(fset, pkgName, files, all)
}

func parseFiles(fset *token.FileSet, pkgName string, files []*ast.File, all bool) (*Package, error) {
	// Collect every interface declaration and whether it carries the marker.
	type decl struct {
		spec   *ast.TypeSpec
		it     *ast.InterfaceType
		marked bool
		doc    string
	}
	decls := make(map[string]*decl)
	order := make([]string, 0, 8)
	imports := make(map[string]string)

	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			name := ""
			if imp.Name != nil {
				name = imp.Name.Name
			}
			imports[path] = name
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok {
					continue
				}
				if pos, found := findDirective(markerReadonly, gd.Doc, ts.Doc, ts.Comment); found {
					return nil, fmt.Errorf("%s: codegen: %s: //%s is a method annotation; annotate the methods that are readonly, not the interface",
						fset.Position(pos), ts.Name.Name, markerReadonly)
				}
				marked := hasMarker(gd.Doc) || hasMarker(ts.Doc) || hasMarker(ts.Comment)
				decls[ts.Name.Name] = &decl{spec: ts, it: it, marked: marked, doc: docText(gd.Doc, ts.Doc)}
				order = append(order, ts.Name.Name)
			}
		}
	}

	// Seed the remote set with marked (or all) interfaces, then close it
	// transitively over referenced interface names.
	remote := make(map[string]bool)
	for _, name := range order {
		if all || decls[name].marked {
			remote[name] = true
		}
	}
	if len(remote) == 0 {
		return nil, fmt.Errorf("codegen: no interfaces marked //%s (and -all not set)", marker)
	}
	for changed := true; changed; {
		changed = false
		for name := range remote {
			for _, ref := range referencedIfaces(decls[name].it) {
				if _, declared := decls[ref]; declared && !remote[ref] {
					remote[ref] = true
					changed = true
				}
			}
		}
	}

	pkg := &Package{Name: pkgName, Imports: imports}
	for _, name := range order {
		if !remote[name] {
			continue
		}
		iface, err := buildIface(fset, name, decls[name].doc, decls[name].it, remote)
		if err != nil {
			return nil, err
		}
		pkg.Ifaces = append(pkg.Ifaces, *iface)
	}
	return pkg, nil
}

func hasMarker(cg *ast.CommentGroup) bool {
	_, ok := brmimark.Has(marker, cg)
	return ok
}

// findDirective reports whether any of the comment groups carries the exact
// brmi directive, returning the comment's position for error reporting.
func findDirective(directive string, groups ...*ast.CommentGroup) (token.Pos, bool) {
	return brmimark.Has(directive, groups...)
}

// methodDirectives scans one method's comment groups for brmi: annotations.
// Unknown or misplaced directives are positioned parse errors: a typo like
// //brmi:readnly must fail loudly, not leave the method silently uncached.
// brmivet: directives (analyzer suppressions) are not codegen's concern and
// pass through untouched.
func methodDirectives(fset *token.FileSet, iface, method string, groups ...*ast.CommentGroup) (readonly bool, err error) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			name, _, ok := brmimark.Directive(c.Text)
			if !ok || strings.HasPrefix(name, "brmivet:") {
				continue
			}
			switch name {
			case markerReadonly:
				readonly = true
			case marker:
				return false, fmt.Errorf("%s: codegen: %s.%s: //%s is an interface annotation, not a method annotation",
					fset.Position(c.Pos()), iface, method, marker)
			default:
				return false, fmt.Errorf("%s: codegen: %s.%s: unknown annotation //%s (method annotations: //%s)",
					fset.Position(c.Pos()), iface, method, name, markerReadonly)
			}
		}
	}
	return readonly, nil
}

func docText(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		var lines []string
		for _, c := range g.List {
			t := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
			if strings.HasPrefix(t, marker) {
				continue
			}
			if t != "" {
				lines = append(lines, t)
			}
		}
		if len(lines) > 0 {
			return strings.Join(lines, " ")
		}
	}
	return ""
}

// referencedIfaces lists bare identifiers used as parameter/result types,
// candidates for transitive inclusion.
func referencedIfaces(it *ast.InterfaceType) []string {
	var out []string
	for _, m := range it.Methods.List {
		ft, ok := m.Type.(*ast.FuncType)
		if !ok {
			continue // embedded interface; handled by buildIface as error
		}
		collect := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				t := f.Type
				if st, ok := t.(*ast.ArrayType); ok {
					t = st.Elt
				}
				if id, ok := t.(*ast.Ident); ok {
					out = append(out, id.Name)
				}
			}
		}
		collect(ft.Params)
		collect(ft.Results)
	}
	return out
}

func buildIface(fset *token.FileSet, name, doc string, it *ast.InterfaceType, remote map[string]bool) (*Iface, error) {
	iface := &Iface{Name: name, Doc: doc}
	for _, m := range it.Methods.List {
		ft, ok := m.Type.(*ast.FuncType)
		if !ok {
			return nil, fmt.Errorf("codegen: %s: embedded interfaces are not supported", name)
		}
		if len(m.Names) == 0 {
			continue
		}
		method := Method{Name: m.Names[0].Name}
		ro, err := methodDirectives(fset, name, method.Name, m.Doc, m.Comment)
		if err != nil {
			return nil, err
		}
		method.ReadOnly = ro

		// Parameters.
		if ft.Params != nil {
			idx := 0
			for fi, f := range ft.Params.List {
				typeStr, err := renderType(fset, f.Type)
				if err != nil {
					return nil, fmt.Errorf("codegen: %s.%s: %w", name, method.Name, err)
				}
				count := len(f.Names)
				if count == 0 {
					count = 1
				}
				for n := 0; n < count; n++ {
					if fi == 0 && n == 0 && typeStr == "context.Context" {
						method.HasCtx = true
						continue
					}
					pname := fmt.Sprintf("a%d", idx)
					if n < len(f.Names) {
						pname = f.Names[n].Name
					}
					method.Params = append(method.Params, Param{
						Name: pname,
						Type: classify(typeStr, remote),
					})
					idx++
				}
			}
		}

		// Results: at most one value plus an optional trailing error.
		if ft.Results != nil {
			var results []string
			for _, f := range ft.Results.List {
				typeStr, err := renderType(fset, f.Type)
				if err != nil {
					return nil, fmt.Errorf("codegen: %s.%s: %w", name, method.Name, err)
				}
				count := len(f.Names)
				if count == 0 {
					count = 1
				}
				for n := 0; n < count; n++ {
					results = append(results, typeStr)
				}
			}
			if len(results) > 0 && results[len(results)-1] == "error" {
				method.HasErr = true
				results = results[:len(results)-1]
			}
			switch len(results) {
			case 0:
			case 1:
				tr := classify(results[0], remote)
				method.Result = &tr
			default:
				return nil, fmt.Errorf("codegen: %s.%s: more than one non-error result", name, method.Name)
			}
		}

		// //brmi:readonly contract: the result must be a serializable value
		// (it is what the cache stores) and every parameter must be one too
		// (proxy arguments have no stable identity to key by). Violations
		// are positioned parse errors, not silently-uncached methods.
		if method.ReadOnly {
			pos := fset.Position(m.Pos())
			if method.Result == nil {
				return nil, fmt.Errorf("%s: codegen: %s.%s: //%s method returns no value — there is no result to cache",
					pos, name, method.Name, markerReadonly)
			}
			if method.Result.Kind != KindValue {
				return nil, fmt.Errorf("%s: codegen: %s.%s: //%s method returns remote interface %s — remote results are not serializable values and cannot be cached",
					pos, name, method.Name, markerReadonly, method.Result.Src)
			}
			for _, p := range method.Params {
				if p.Type.Kind != KindValue {
					return nil, fmt.Errorf("%s: codegen: %s.%s: //%s method takes remote-interface parameter %s %s — proxy arguments have no serializable cache identity",
						pos, name, method.Name, markerReadonly, p.Name, p.Type.Src)
				}
			}
		}
		iface.Methods = append(iface.Methods, method)
	}
	return iface, nil
}

// classify applies the paper's translation rules to a rendered type.
func classify(src string, remote map[string]bool) TypeRef {
	if elem, ok := strings.CutPrefix(src, "[]"); ok && remote[elem] {
		return TypeRef{Kind: KindRemoteSlice, Src: src, Iface: elem}
	}
	if remote[src] {
		return TypeRef{Kind: KindRemote, Src: src, Iface: src}
	}
	return TypeRef{Kind: KindValue, Src: src}
}

func renderType(fset *token.FileSet, e ast.Expr) (string, error) {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// GenerateToFile runs the full pipeline: parse dir, generate, write out.
func GenerateToFile(dir, out string, opts Options) error {
	pkg, err := ParseDir(dir, opts.All)
	if err != nil {
		return err
	}
	src, err := Generate(pkg, opts)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	return os.WriteFile(out, src, 0o644)
}
