package codegen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture materializes a one-file package in a temp dir.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "iface.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const sampleSrc = `package sample

import (
	"context"
	"time"
)

//brmi:remote
type Store interface {
	Get(key string) (Item, error)
	List() ([]Item, error)
	Put(ctx context.Context, key string, value []byte) error
	Stamp() (time.Time, error)
}

type Item interface {
	Value() ([]byte, error)
	Touch() error
}

// Unrelated is not referenced and not marked: excluded.
type Unrelated interface {
	Nope() error
}
`

func TestParseDirExtractsModel(t *testing.T) {
	dir := writeFixture(t, sampleSrc)
	pkg, err := ParseDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "sample" {
		t.Fatalf("pkg name %q", pkg.Name)
	}
	if len(pkg.Ifaces) != 2 {
		t.Fatalf("got %d interfaces, want 2 (Store + transitive Item)", len(pkg.Ifaces))
	}
	store := pkg.Ifaces[0]
	if store.Name != "Store" {
		t.Fatalf("first iface %q", store.Name)
	}
	if len(store.Methods) != 4 {
		t.Fatalf("Store has %d methods", len(store.Methods))
	}

	get := store.Methods[0]
	if get.Name != "Get" || get.Result == nil || get.Result.Kind != KindRemote || get.Result.Iface != "Item" {
		t.Fatalf("Get parsed wrong: %+v", get)
	}
	if !get.HasErr {
		t.Fatal("Get.HasErr = false")
	}

	list := store.Methods[1]
	if list.Result == nil || list.Result.Kind != KindRemoteSlice || list.Result.Iface != "Item" {
		t.Fatalf("List parsed wrong: %+v", list)
	}

	put := store.Methods[2]
	if !put.HasCtx {
		t.Fatal("Put.HasCtx = false (ctx param not detected)")
	}
	if len(put.Params) != 2 {
		t.Fatalf("Put params = %+v", put.Params)
	}
	if put.Params[1].Type.Src != "[]byte" || put.Params[1].Type.Kind != KindValue {
		t.Fatalf("Put value param parsed wrong: %+v", put.Params[1])
	}
	if put.Result != nil {
		t.Fatalf("Put result = %+v, want void", put.Result)
	}

	stamp := store.Methods[3]
	if stamp.Result == nil || stamp.Result.Kind != KindValue || stamp.Result.Src != "time.Time" {
		t.Fatalf("Stamp parsed wrong: %+v", stamp.Result)
	}
}

func TestParseDirNoMarked(t *testing.T) {
	dir := writeFixture(t, `package empty

type Plain interface{ M() error }
`)
	if _, err := ParseDir(dir, false); err == nil {
		t.Fatal("no marked interfaces accepted without -all")
	}
	pkg, err := ParseDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Ifaces) != 1 {
		t.Fatalf("all-mode found %d interfaces", len(pkg.Ifaces))
	}
}

func TestGenerateRejectsMissingError(t *testing.T) {
	dir := writeFixture(t, `package bad

//brmi:remote
type Bad interface {
	NoError() string
}
`)
	pkg, err := ParseDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(pkg, Options{}); err == nil || !strings.Contains(err.Error(), "must return error") {
		t.Fatalf("got %v, want missing-error diagnostic", err)
	}
}

func TestGenerateRejectsReservedNames(t *testing.T) {
	dir := writeFixture(t, `package bad

//brmi:remote
type Bad interface {
	Flush() error
}
`)
	pkg, err := ParseDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(pkg, Options{}); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("got %v, want collision diagnostic", err)
	}
}

func TestGenerateRejectsMultiResult(t *testing.T) {
	dir := writeFixture(t, `package bad

//brmi:remote
type Bad interface {
	Two() (int, string, error)
}
`)
	if _, err := ParseDir(dir, false); err == nil || !strings.Contains(err.Error(), "more than one") {
		t.Fatalf("got %v, want multi-result diagnostic", err)
	}
}

func TestGenerateRejectsEmbeddedInterfaces(t *testing.T) {
	dir := writeFixture(t, `package bad

import "io"

//brmi:remote
type Bad interface {
	io.Reader
}
`)
	if _, err := ParseDir(dir, false); err == nil || !strings.Contains(err.Error(), "embedded") {
		t.Fatalf("got %v, want embedded diagnostic", err)
	}
}

func TestGenerateOutputShape(t *testing.T) {
	dir := writeFixture(t, sampleSrc)
	pkg, err := ParseDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(pkg, Options{Prefix: "app"})
	if err != nil {
		t.Fatal(err)
	}
	out := string(src)
	for _, want := range []string{
		"package sample",
		`const StoreIfaceName = "app.Store"`,
		"type StoreStub struct",
		"var _ Store = (*StoreStub)(nil)",
		"type BStore struct",
		"type CItem struct",
		"func (b *BStore) Get(key string) *BItem",
		"func (b *BStore) List() *CItem",
		"func (b *BStore) Stamp() core.TypedFuture[time.Time]",
		"func (b *BStore) Put(key string, value []byte) *core.Future",
		"func (b *BItem) Touch() *core.Future",
		"rmi.RegisterStubFactory(StoreIfaceName",
		"func (s *StoreStub) Put(ctx context.Context, key string, value []byte) error",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated output missing %q", want)
		}
	}
	// The batch layer must drop ctx parameters (recording is local).
	if strings.Contains(out, "func (b *BStore) Put(ctx") {
		t.Error("batch method kept the ctx parameter")
	}
}

func TestReadonlyAnnotationParsed(t *testing.T) {
	dir := writeFixture(t, `package sample

//brmi:remote
type Store interface {
	//brmi:readonly
	Size() (int64, error)
	Put(key string) error
}
`)
	pkg, err := ParseDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	ms := pkg.Ifaces[0].Methods
	if !ms[0].ReadOnly {
		t.Fatal("annotated method not marked ReadOnly")
	}
	if ms[1].ReadOnly {
		t.Fatal("unannotated method marked ReadOnly")
	}
	src, err := Generate(pkg, Options{Prefix: "app"})
	if err != nil {
		t.Fatal(err)
	}
	out := string(src)
	if !strings.Contains(out, `CallRO("Size")`) {
		t.Error("readonly batch method does not record via CallRO")
	}
	if !strings.Contains(out, `rmi.RegisterReadOnly(StoreIfaceName, "Size")`) {
		t.Error("generated init does not register the readonly declaration")
	}
	if strings.Contains(out, `CallRO("Put"`) {
		t.Error("write method records via CallRO")
	}
}

// TestReadonlyAnnotationRejections pins the positioned parse errors for
// malformed method annotations: each must fail loudly at generation time,
// never degrade to a silently-uncached method.
func TestReadonlyAnnotationRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			name: "remote result not serializable",
			src: `package bad

//brmi:remote
type Store interface {
	//brmi:readonly
	Get(key string) (Item, error)
}

type Item interface{ Touch() error }
`,
			want: "not serializable",
		},
		{
			name: "void method has nothing to cache",
			src: `package bad

//brmi:remote
type Store interface {
	//brmi:readonly
	Ping() error
}
`,
			want: "no result to cache",
		},
		{
			name: "remote parameter has no cache identity",
			src: `package bad

//brmi:remote
type Store interface {
	//brmi:readonly
	Contains(item Item) (bool, error)
}

type Item interface{ Touch() error }
`,
			want: "cache identity",
		},
		{
			name: "readonly on the interface, not a method",
			src: `package bad

//brmi:remote
//brmi:readonly
type Store interface {
	Get() (int, error)
}
`,
			want: "method annotation",
		},
		{
			name: "remote marker on a method",
			src: `package bad

//brmi:remote
type Store interface {
	//brmi:remote
	Get() (int, error)
}
`,
			want: "interface annotation",
		},
		{
			name: "unknown brmi annotation",
			src: `package bad

//brmi:remote
type Store interface {
	//brmi:cached
	Get() (int, error)
}
`,
			want: "unknown annotation",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeFixture(t, tc.src)
			_, err := ParseDir(dir, false)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
			// Positioned: the diagnostic must name file and line.
			if err != nil && !strings.Contains(err.Error(), "iface.go:") {
				t.Fatalf("diagnostic not positioned: %v", err)
			}
		})
	}
}

// TestFixtureInSync regenerates the checked-in fstest fixture and fails if
// the generator output drifted from the committed file.
func TestFixtureInSync(t *testing.T) {
	pkg, err := ParseDir("fstest", false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate(pkg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join("fstest", "brmi_gen.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("fstest/brmi_gen.go is stale: re-run `go run ./cmd/brmigen -in internal/codegen/fstest`")
	}
}

func TestGenerateToFile(t *testing.T) {
	dir := writeFixture(t, sampleSrc)
	out := filepath.Join(dir, "gen", "brmi_gen.go")
	if err := GenerateToFile(dir, out, Options{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Code generated by brmigen") {
		t.Fatal("output missing generated-code header")
	}
}
