package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rmi"
)

// Benchmarks reproducing the paper's evaluation (Figures 5-13, §5.2-§5.4),
// one per figure, plus the ablations from DESIGN.md. Latency profiles:
// LAN is the paper's configuration 1 (1 Gbps, 1 ms RTT) unscaled; the
// wireless profile (48 Mbps, 252 ms RTT) is scaled down by benchWirelessScale
// to keep the suite's wall-clock time reasonable — scaling divides every
// data point by the same constant, preserving the figures' shapes. Run
// cmd/benchfig -scale 1 for paper-faithful wireless timing.
const benchWirelessScale = 50

var (
	benchLAN      = netsim.LAN
	benchWireless = netsim.Wireless.Scaled(benchWirelessScale)
)

// figBench runs each variant of a workload as a sub-benchmark per
// x-position. The environment and recording setup are excluded from the
// measured time; one iteration is one complete client operation (e.g. "all
// n calls and the flush").
func figBench(b *testing.B, profile netsim.Profile, xs []int, setup bench.Setup) {
	for _, x := range xs {
		env, err := bench.NewEnv(profile)
		if err != nil {
			b.Fatal(err)
		}
		variants, err := setup(env, x)
		if err != nil {
			env.Close()
			b.Fatal(err)
		}
		for _, v := range variants {
			v := v
			b.Run(fmt.Sprintf("x=%d/%s", x, v.Name), func(b *testing.B) {
				before := env.Client.CallCount()
				if err := v.Op(); err != nil { // warm-up + round-trip count
					b.Fatal(err)
				}
				rounds := env.Client.CallCount() - before
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := v.Op(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(rounds), "roundtrips/op")
				b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/op")
			})
		}
		env.Close()
	}
}

// BenchmarkFig05NoOpLAN reproduces Figure 5: n no-op calls over the LAN
// profile; RMI grows linearly, BRMI stays flat at one round trip.
func BenchmarkFig05NoOpLAN(b *testing.B) {
	figBench(b, benchLAN, []int{1, 2, 3, 4, 5}, bench.NoopSetup)
}

// BenchmarkFig06NoOpWireless reproduces Figure 6 (wireless profile).
func BenchmarkFig06NoOpWireless(b *testing.B) {
	figBench(b, benchWireless, []int{1, 2, 3, 4, 5}, bench.NoopSetup)
}

// BenchmarkFig07ListLAN reproduces Figure 7: traversing a remote linked
// list; RMI marshals a remote object per step, BRMI batches the chain.
func BenchmarkFig07ListLAN(b *testing.B) {
	figBench(b, benchLAN, []int{1, 2, 3, 4, 5}, bench.ListSetup)
}

// BenchmarkFig08ListWireless reproduces Figure 8 (wireless profile).
func BenchmarkFig08ListWireless(b *testing.B) {
	figBench(b, benchWireless, []int{1, 2, 3, 4, 5}, bench.ListSetup)
}

// BenchmarkFig09ListNoBatchLAN reproduces Figure 9: the traversal with a
// flush after every call (batches of size one) — BRMI grows linearly too,
// but without per-step remote-object marshalling.
func BenchmarkFig09ListNoBatchLAN(b *testing.B) {
	figBench(b, benchLAN, []int{1, 2, 3, 4, 5}, bench.ListNoBatchSetup)
}

// BenchmarkFig10SimLAN reproduces Figure 10: the remote simulation whose
// balancer argument is a loopback stub under RMI but the identical local
// object under BRMI (§4.4).
func BenchmarkFig10SimLAN(b *testing.B) {
	figBench(b, benchLAN, []int{5, 10, 20, 40}, bench.SimulationSetup)
}

// BenchmarkFig11SimWireless reproduces Figure 11 (wireless profile).
func BenchmarkFig11SimWireless(b *testing.B) {
	figBench(b, benchWireless, []int{5, 10, 20, 40}, bench.SimulationSetup)
}

// BenchmarkFig12FilesLAN reproduces Figure 12: fetching n files (100 KB
// total) from the remote file server; RMI needs 1+5n round trips, BRMI one.
func BenchmarkFig12FilesLAN(b *testing.B) {
	figBench(b, benchLAN, []int{1, 2, 5, 10}, bench.FileServerSetup)
}

// BenchmarkFig13FilesWireless reproduces Figure 13 (wireless profile).
func BenchmarkFig13FilesWireless(b *testing.B) {
	figBench(b, benchWireless, []int{1, 2, 5, 10}, bench.FileServerSetup)
}

// BenchmarkAblationIdentity quantifies design decision 2 (DESIGN.md): the
// simulation workload on the faithful substrate vs one that short-circuits
// refs to local objects (what Java RMI chose not to do).
func BenchmarkAblationIdentity(b *testing.B) {
	b.Run("faithful", func(b *testing.B) {
		figBench(b, benchLAN, []int{10}, bench.SimulationSetup)
	})
	b.Run("shortcut", func(b *testing.B) {
		for _, x := range []int{10} {
			env, err := bench.NewEnv(benchLAN, bench.WithServerOptions(rmi.WithLocalShortcut()))
			if err != nil {
				b.Fatal(err)
			}
			variants, err := bench.SimulationSetup(env, x)
			if err != nil {
				env.Close()
				b.Fatal(err)
			}
			rmiVariant := variants[0]
			b.Run(fmt.Sprintf("x=%d/RMI", x), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := rmiVariant.Op(); err != nil {
						b.Fatal(err)
					}
				}
			})
			env.Close()
		}
	})
}

// BenchmarkAblationStubs quantifies design decision 1: dynamic recording
// vs generated typed stubs (wrapper overhead only).
func BenchmarkAblationStubs(b *testing.B) {
	figBench(b, netsim.Instant, []int{100}, bench.StubsSetup)
}

// BenchmarkAblationCursor quantifies flush granularity: 40 calls at batch
// sizes 1..40 (generalizing Figure 9).
func BenchmarkAblationCursor(b *testing.B) {
	figBench(b, benchLAN, []int{1, 4, 40}, bench.BatchSizeSetup(40))
}

// BenchmarkRecordingOnly isolates client-side recording cost (no flush):
// the price of building a batch, which the paper argues is negligible
// against one network round trip.
func BenchmarkRecordingOnly(b *testing.B) {
	env, err := bench.NewEnv(netsim.Instant)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	ref, err := env.Export(&bench.NoopService{}, "bench.Noop")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := core.New(env.Client, ref).Root()
		for j := 0; j < 10; j++ {
			root.Call("Noop")
		}
	}
}

// BenchmarkWireRoundTrip isolates the full stack minus latency: one no-op
// RMI call over the instant profile (codec + transport + dispatch cost).
func BenchmarkWireRoundTrip(b *testing.B) {
	env, err := bench.NewEnv(netsim.Instant)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	variants, err := bench.NoopSetup(env, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := variants[0].Op(); err != nil {
			b.Fatal(err)
		}
	}
}
